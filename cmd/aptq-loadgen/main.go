// Command aptq-loadgen is an open-loop load generator for aptq-serve: it
// fires requests at a fixed arrival rate (exponential interarrivals, so
// bursts happen) regardless of how fast the server answers — the regime
// where queueing delay and admission control actually show up, unlike a
// closed loop that politely waits for each reply. Prompt lengths, output
// budgets (short-skewed with a long tail), priorities and shared prompt
// prefixes are drawn from a seeded plan, so two runs against the same
// server replay the identical workload.
//
// Every request uses the streaming form of POST /v1/generate, which is
// what makes the interactive-latency percentiles measurable: TTFT is the
// time from send to the first SSE token event, inter-token latency the
// gap between consecutive events. Results are written as a benchjson
// snapshot (map of benchmark name to metric map, *_ms keys lower-is-
// better), so `benchjson -compare` diffs latency runs exactly like it
// diffs throughput runs:
//
//	aptq-loadgen -url http://127.0.0.1:8080 -rate 50 -duration 5s > lat.json
//	benchjson -compare lat_old.json lat.json -ms-threshold 0.5
//
// With -shared-prefix N the shared prefixes are N tokens long — size it
// to a multiple of the server's KV page (16 rows) so whole prefix pages
// publish into the prefix cache and later requests adopt them zero-copy —
// and the run ends by sampling /v1/stats, folding the paged-KV sharing
// counters (kv_unique_bytes, kv_logical_bytes, kv_sharing_ratio) into the
// snapshot next to the latency percentiles.
//
// With -burst-rps the arrival rate ramps linearly from -rate to the burst
// rate over -ramp-s seconds (immediately when -ramp-s is 0) — the overload
// shape that drives a -kv-budget-mb-bounded server through its degradation
// ladder. When the sampled /v1/stats exposes the memory-pressure surface,
// the run folds preemptions, admission_deferred, panics, rejected and the
// budget/high-water bytes into the snapshot as LoadgenPressure.
//
// With -max-error-rate / -max-p99-ttft-ms the generator gates itself and
// exits non-zero past the bound, so a CI job needs no JSON tooling:
//
//	aptq-loadgen -rate 40 -duration 3s -max-error-rate 0 -max-p99-ttft-ms 5000
//
// Multi-replica targeting: -replicas takes a comma-separated URL list and
// spreads the planned requests across them round-robin (the naive
// affinity-free baseline — compare against pointing -url at aptq-router,
// which routes the same workload by prefix affinity). Either way, when
// the stats endpoint the run samples turns out to be a router (its
// /v1/stats carries router_* counters), the retry/failover/spill/ejection
// counters are folded into the snapshot as LoadgenRouter, so a latency CI
// artifact records how hard the fault-tolerance machinery worked during
// the run:
//
//	aptq-loadgen -url http://127.0.0.1:8090 -rate 50 -duration 5s   # router
//	aptq-loadgen -replicas http://127.0.0.1:8081,http://127.0.0.1:8082
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

type config struct {
	url        string
	replicas   string        // comma-separated URL list; round-robin targeting
	rate       float64       // mean request arrivals per second
	duration   time.Duration // plan horizon (arrivals past it are dropped)
	requests   int           // hard cap on planned requests (0 = rate*duration)
	seed       int64
	promptMin  int
	promptMax  int
	outMin     int
	outMax     int
	prefixPop  int     // distinct shared prefixes in the population
	prefixLen  int     // tokens per shared prefix
	prefixFrac float64 // fraction of requests drawing a shared prefix
	sharedPref int     // page-sized shared-prefix override; also samples KV sharing
	priorities int     // priority classes drawn uniformly from [0,n)
	deadlineMs int64   // per-request deadline forwarded to the server (0 = none)
	burstRPS   float64 // peak arrival rate the plan ramps to (0 = constant -rate)
	rampS      float64 // seconds to ramp linearly from -rate to -burst-rps (<=0 = immediate)

	maxErrorRate float64 // self-gate: fail past this error rate (<0 = off)
	maxP99TTFTMs float64 // self-gate: fail past this TTFT p99 (0 = off)
}

func main() {
	var cfg config
	flag.StringVar(&cfg.url, "url", "http://127.0.0.1:8080", "aptq-serve (or aptq-router) base URL")
	flag.StringVar(&cfg.replicas, "replicas", "", "comma-separated replica URLs; requests round-robin across them (overrides -url for request traffic)")
	flag.Float64Var(&cfg.rate, "rate", 20, "mean arrival rate, requests/second (open loop)")
	flag.DurationVar(&cfg.duration, "duration", 5*time.Second, "arrival window to plan")
	flag.IntVar(&cfg.requests, "requests", 0, "cap on planned requests (0 = rate*duration)")
	flag.Int64Var(&cfg.seed, "seed", 1, "workload plan seed (same seed = same workload)")
	flag.IntVar(&cfg.promptMin, "prompt-min", 2, "minimum prompt length, tokens")
	flag.IntVar(&cfg.promptMax, "prompt-max", 16, "maximum prompt length, tokens")
	flag.IntVar(&cfg.outMin, "out-min", 2, "minimum output budget, tokens")
	flag.IntVar(&cfg.outMax, "out-max", 24, "maximum output budget, tokens (short-skewed draw)")
	flag.IntVar(&cfg.prefixPop, "prefix-pop", 4, "distinct shared prompt prefixes (0 = no sharing)")
	flag.IntVar(&cfg.prefixLen, "prefix-len", 6, "tokens per shared prefix")
	flag.Float64Var(&cfg.prefixFrac, "prefix-frac", 0.5, "fraction of requests reusing a shared prefix")
	flag.IntVar(&cfg.sharedPref, "shared-prefix", 0, "shared-prefix length override, tokens; size it to a multiple of the server's KV page (16) so prefix pages are adopted zero-copy, and the run appends the server's KV sharing stats to the snapshot (0 = off)")
	flag.IntVar(&cfg.priorities, "priorities", 1, "priority classes drawn uniformly (1 = all equal)")
	flag.Int64Var(&cfg.deadlineMs, "deadline-ms", 0, "per-request deadline_ms forwarded to the server (0 = none)")
	flag.Float64Var(&cfg.burstRPS, "burst-rps", 0, "peak arrival rate the plan ramps to; the burst regime that exercises admission deferral and preemption (0 = constant -rate)")
	flag.Float64Var(&cfg.rampS, "ramp-s", 0, "seconds to ramp linearly from -rate to -burst-rps (<=0 with -burst-rps set = burst immediately)")
	flag.Float64Var(&cfg.maxErrorRate, "max-error-rate", -1, "exit non-zero when error rate exceeds this (negative = no gate)")
	flag.Float64Var(&cfg.maxP99TTFTMs, "max-p99-ttft-ms", 0, "exit non-zero when TTFT p99 exceeds this many ms (0 = no gate)")
	out := flag.String("out", "", "write the latency snapshot JSON here (empty = stdout)")
	flag.Parse()

	snap, failures, err := run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aptq-loadgen: %v\n", err)
		os.Exit(1)
	}
	b, _ := json.MarshalIndent(snap, "", "  ")
	b = append(b, '\n')
	if *out == "" {
		os.Stdout.Write(b)
	} else if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "aptq-loadgen: %v\n", err)
		os.Exit(1)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "aptq-loadgen: GATE FAILED: %s\n", f)
		}
		os.Exit(1)
	}
}

// withPrefixOverride applies -shared-prefix to the plan shape: when set,
// it replaces the shared-prefix length with one sized for the server's
// paged KV cache — a page multiple means whole prefix pages publish into
// the prefix cache and later requests adopt them zero-copy, which is what
// makes the sharing ratio sampled after the run move.
func (c config) withPrefixOverride() config {
	if c.sharedPref > 0 {
		c.prefixLen = c.sharedPref
	}
	return c
}

// call is one planned request: when to fire it and what to send.
type call struct {
	at   time.Duration
	body map[string]any
}

// buildPlan derives the full workload from the seed: Poisson arrivals at
// cfg.rate, prompts drawn from the server's vocabulary (optionally
// opening with one of prefixPop shared prefixes — the prefix-cache /
// chunked-prefill hot case), and output budgets skewed short with a long
// tail (r^2 draw), the shape interactive traffic actually has.
func buildPlan(cfg config, vocab, maxSeq int) []call {
	rng := rand.New(rand.NewSource(cfg.seed))
	tok := func() int { return rng.Intn(vocab) }
	prefixes := make([][]int, cfg.prefixPop)
	for i := range prefixes {
		p := make([]int, cfg.prefixLen)
		for j := range p {
			p[j] = tok()
		}
		prefixes[i] = p
	}
	span := func(lo, hi int) int {
		if hi <= lo {
			return lo
		}
		return lo + rng.Intn(hi-lo+1)
	}
	var plan []call
	var at time.Duration
	for i := 0; cfg.requests == 0 || i < cfg.requests; i++ {
		// Exponential interarrival: open-loop Poisson process. With
		// -burst-rps the intensity is time-varying (rateAt), which makes the
		// plan a stepwise nonhomogeneous Poisson process — each gap drawn at
		// the instantaneous rate of the previous arrival — still fully
		// determined by the seed.
		at += time.Duration(rng.ExpFloat64() / rateAt(cfg, at) * float64(time.Second))
		if at > cfg.duration {
			break
		}
		var prompt []int
		if len(prefixes) > 0 && rng.Float64() < cfg.prefixFrac {
			prompt = append(prompt, prefixes[rng.Intn(len(prefixes))]...)
		}
		for n := span(cfg.promptMin, cfg.promptMax); len(prompt) < n; {
			prompt = append(prompt, tok())
		}
		// Short-skewed output budget with a long tail: r^2 concentrates
		// mass near outMin while still reaching outMax occasionally.
		r := rng.Float64()
		maxTok := cfg.outMin + int(r*r*float64(cfg.outMax-cfg.outMin)+0.5)
		// Keep room for at least one generated token in the context.
		if len(prompt) > maxSeq-1 {
			prompt = prompt[:maxSeq-1]
		}
		if rest := maxSeq - len(prompt); maxTok > rest {
			maxTok = rest
		}
		if maxTok < 1 {
			maxTok = 1
		}
		body := map[string]any{
			"id":          fmt.Sprintf("lg-%d", i),
			"tokens":      prompt,
			"max_tokens":  maxTok,
			"temperature": 0.8,
			"seed":        rng.Int63(),
		}
		if cfg.priorities > 1 {
			body["priority"] = rng.Intn(cfg.priorities)
		}
		if cfg.deadlineMs > 0 {
			body["deadline_ms"] = cfg.deadlineMs
		}
		plan = append(plan, call{at: at, body: body})
	}
	return plan
}

// rateAt is the plan's arrival intensity at offset t: the base -rate,
// ramped linearly to -burst-rps over the first -ramp-s seconds (with no
// ramp, the burst rate applies from t=0). The burst shape is what drives
// a budgeted server into its degradation ladder — admission deferral,
// cache reclaim, preemption — while staying replayable from the seed.
func rateAt(cfg config, t time.Duration) float64 {
	if cfg.burstRPS <= 0 {
		return cfg.rate
	}
	if cfg.rampS <= 0 {
		return cfg.burstRPS
	}
	frac := t.Seconds() / cfg.rampS
	if frac >= 1 {
		return cfg.burstRPS
	}
	return cfg.rate + frac*(cfg.burstRPS-cfg.rate)
}

// collector accumulates latency samples and error counts across the
// concurrent request goroutines.
type collector struct {
	mu     sync.Mutex
	ttft   []time.Duration
	itl    []time.Duration
	errs   int
	tokens int
}

func (c *collector) record(ttft time.Duration, itl []time.Duration, tokens int, failed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if failed {
		c.errs++
		return
	}
	c.ttft = append(c.ttft, ttft)
	c.itl = append(c.itl, itl...)
	c.tokens += tokens
}

// run executes the planned workload against cfg.url and returns the
// latency snapshot plus any violated self-gates.
func run(cfg config) (map[string]map[string]float64, []string, error) {
	// The target set: -replicas spreads requests round-robin (the
	// affinity-free baseline); otherwise everything goes to -url, which may
	// be a single replica or a router. Shape and post-run stats come from
	// the first target — replicas are identical by contract.
	targets := splitURLs(cfg.replicas)
	if len(targets) == 0 {
		targets = []string{cfg.url}
	}
	statsURL := targets[0]

	vocab, maxSeq, err := fetchModelShape(statsURL)
	if err != nil {
		return nil, nil, fmt.Errorf("healthz: %w", err)
	}
	cfg = cfg.withPrefixOverride()
	plan := buildPlan(cfg, vocab, maxSeq)
	if len(plan) == 0 {
		return nil, nil, fmt.Errorf("empty plan: rate %.1f over %s yields no arrivals", cfg.rate, cfg.duration)
	}

	var col collector
	var wg sync.WaitGroup
	client := &http.Client{}
	start := time.Now()
	for i, c := range plan {
		if d := c.at - time.Since(start); d > 0 {
			time.Sleep(d) // open loop: fire on schedule, never on reply
		}
		target := targets[i%len(targets)]
		wg.Add(1)
		go func(c call, target string) {
			defer wg.Done()
			ttft, itl, tokens, failed := doRequest(client, target, c.body)
			col.record(ttft, itl, tokens, failed)
		}(c, target)
	}
	wg.Wait()
	elapsed := time.Since(start)

	col.mu.Lock()
	defer col.mu.Unlock()
	errRate := float64(col.errs) / float64(len(plan))
	snap := map[string]map[string]float64{
		"LoadgenTTFT": {
			"p50_ms":  ms(percentile(col.ttft, 50)),
			"p99_ms":  ms(percentile(col.ttft, 99)),
			"samples": float64(len(col.ttft)),
		},
		"LoadgenInterToken": {
			"p50_ms":  ms(percentile(col.itl, 50)),
			"p99_ms":  ms(percentile(col.itl, 99)),
			"samples": float64(len(col.itl)),
		},
		"LoadgenSummary": {
			"requests":   float64(len(plan)),
			"errors":     float64(col.errs),
			"error_rate": errRate,
			"tok_per_s":  float64(col.tokens) / elapsed.Seconds(),
		},
	}
	if cfg.sharedPref > 0 {
		kv, err := fetchKVSharing(statsURL)
		if err != nil {
			return nil, nil, fmt.Errorf("stats: %w", err)
		}
		snap["LoadgenKVSharing"] = kv
	}
	// If the stats endpoint is a router (its /v1/stats carries router_*
	// counters), fold the fault-tolerance counters into the snapshot: a
	// latency artifact should say how many retries/failovers/spills the
	// run's percentiles absorbed.
	if rc, ok := fetchRouterCounters(statsURL); ok {
		snap["LoadgenRouter"] = rc
	}
	// Likewise for the memory-pressure counters: when the server exposes
	// them (any scheduler with the pressure surface), the snapshot records
	// how much degradation — preemptions, deferred admissions, sheds,
	// panics — the run's percentiles were measured under, plus the budget
	// and the pool's high-water mark.
	if pc, ok := fetchPressureCounters(statsURL); ok {
		snap["LoadgenPressure"] = pc
	}
	var failures []string
	if cfg.maxErrorRate >= 0 && errRate > cfg.maxErrorRate {
		failures = append(failures, fmt.Sprintf("error rate %.3f > %.3f (%d/%d requests failed)",
			errRate, cfg.maxErrorRate, col.errs, len(plan)))
	}
	if p99 := snap["LoadgenTTFT"]["p99_ms"]; cfg.maxP99TTFTMs > 0 && p99 > cfg.maxP99TTFTMs {
		failures = append(failures, fmt.Sprintf("TTFT p99 %.1fms > %.1fms", p99, cfg.maxP99TTFTMs))
	}
	return snap, failures, nil
}

// fetchKVSharing samples the server's paged-KV sharing counters from
// /v1/stats once the workload has drained. Slots release their pages
// lazily (on the next admission), so the post-run numbers still reflect
// the workload: kv_unique_bytes is resident KV with shared prefix pages
// counted once, kv_logical_bytes what the same references would cost held
// privately, kv_sharing_ratio their quotient (> 1 means prefix pages were
// actually adopted). The keys land in the snapshot verbatim, so
// `benchjson -compare` treats the *_bytes pair as lower-is-better
// residency metrics like any other.
func fetchKVSharing(base string) (map[string]float64, error) {
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st struct {
		Unique  float64 `json:"kv_unique_bytes"`
		Logical float64 `json:"kv_logical_bytes"`
		Pages   float64 `json:"kv_pages"`
		Ratio   float64 `json:"kv_sharing_ratio"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return map[string]float64{
		"kv_unique_bytes":  st.Unique,
		"kv_logical_bytes": st.Logical,
		"kv_pages":         st.Pages,
		"kv_sharing_ratio": st.Ratio,
	}, nil
}

// fetchRouterCounters samples router_* counters from /v1/stats; ok is
// false when the endpoint has none (a plain replica). The keys land in
// the snapshot with the router_ prefix stripped.
func fetchRouterCounters(base string) (map[string]float64, bool) {
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, false
	}
	out := map[string]float64{}
	for k, v := range st {
		f, isNum := v.(float64)
		if isNum && strings.HasPrefix(k, "router_") {
			out[strings.TrimPrefix(k, "router_")] = f
		}
	}
	if len(out) == 0 {
		return nil, false
	}
	return out, true
}

// fetchPressureCounters samples the memory-pressure counters from
// /v1/stats; ok is false when the endpoint has no pressure surface (the
// `preemptions` key is the sentinel). The counters are cumulative since
// server start, so a CI job that wants per-run deltas boots a fresh
// server per run — which the smoke scripts do anyway.
func fetchPressureCounters(base string) (map[string]float64, bool) {
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, false
	}
	if _, hasPressure := st["preemptions"]; !hasPressure {
		return nil, false
	}
	out := map[string]float64{}
	for _, k := range []string{"preemptions", "admission_deferred", "panics", "rejected", "kv_budget_bytes", "kv_high_water_bytes"} {
		if f, isNum := st[k].(float64); isNum {
			out[k] = f
		}
	}
	return out, true
}

// splitURLs parses a comma-separated URL list, trimming blanks and
// trailing slashes.
func splitURLs(s string) []string {
	var urls []string
	for _, part := range strings.Split(s, ",") {
		u := strings.TrimRight(strings.TrimSpace(part), "/")
		if u != "" {
			urls = append(urls, u)
		}
	}
	return urls
}

// fetchModelShape asks /healthz for the served model's vocabulary and
// context length, so the plan only produces prompts the server accepts.
func fetchModelShape(base string) (vocab, maxSeq int, err error) {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var h struct {
		Vocab  int `json:"vocab"`
		MaxSeq int `json:"maxseq"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return 0, 0, err
	}
	if h.Vocab <= 0 || h.MaxSeq <= 0 {
		return 0, 0, fmt.Errorf("healthz reports vocab=%d maxseq=%d", h.Vocab, h.MaxSeq)
	}
	return h.Vocab, h.MaxSeq, nil
}

// doRequest drives one streaming generate and measures its interactive
// latencies: TTFT from send to the first SSE token event, inter-token
// latency between consecutive token events. A request fails on transport
// error, non-200 status, an empty stream, or an error in the final event.
func doRequest(client *http.Client, base string, body map[string]any) (ttft time.Duration, itl []time.Duration, tokens int, failed bool) {
	b, _ := json.Marshal(body)
	sent := time.Now()
	resp, err := client.Post(base+"/v1/generate?stream=1", "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, nil, 0, true
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return 0, nil, 0, true
	}
	var (
		last   time.Time
		events int
		final  string
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if len(line) < 6 || line[:6] != "data: " {
			continue
		}
		now := time.Now()
		if events == 0 {
			ttft = now.Sub(sent)
		} else {
			itl = append(itl, now.Sub(last))
		}
		last = now
		events++
		final = line[6:]
	}
	if sc.Err() != nil || events == 0 {
		return 0, nil, 0, true
	}
	// The last event is the complete response body; every earlier one is a
	// token event, so tokens = events-1. The final inter-token sample (gap
	// between last token and the response event) is dropped: both are
	// written in the same tick, it measures nothing.
	if n := len(itl); n > 0 {
		itl = itl[:n-1]
	}
	var res struct {
		FinishReason string `json:"finish_reason"`
		Error        string `json:"error"`
	}
	if json.Unmarshal([]byte(final), &res) != nil || res.Error != "" || res.FinishReason == "" {
		return 0, nil, 0, true
	}
	return ttft, itl, events - 1, false
}

// ms converts a duration to float milliseconds for the snapshot.
func ms(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// percentile is the nearest-rank percentile over an unsorted sample set
// (same definition the scheduler's /v1/stats surface uses).
func percentile(samples []time.Duration, p int) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

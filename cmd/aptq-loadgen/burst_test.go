package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestRateAtRampShape pins the time-varying intensity: constant without
// -burst-rps, immediate burst without a ramp, and a linear interpolation
// capped at the burst rate with one.
func TestRateAtRampShape(t *testing.T) {
	base := config{rate: 10}
	if got := rateAt(base, time.Second); got != 10 {
		t.Fatalf("no burst: rateAt = %v, want 10", got)
	}
	burst := config{rate: 10, burstRPS: 100}
	if got := rateAt(burst, 0); got != 100 {
		t.Fatalf("no ramp: rateAt(0) = %v, want 100 immediately", got)
	}
	ramp := config{rate: 10, burstRPS: 100, rampS: 2}
	if got := rateAt(ramp, 0); got != 10 {
		t.Fatalf("ramp start: rateAt(0) = %v, want 10", got)
	}
	if got := rateAt(ramp, time.Second); got != 55 {
		t.Fatalf("ramp midpoint: rateAt(1s) = %v, want 55", got)
	}
	if got := rateAt(ramp, 3*time.Second); got != 100 {
		t.Fatalf("past ramp: rateAt(3s) = %v, want 100 (capped)", got)
	}
}

// TestBuildPlanBurstDensifiesArrivals: the same seed and horizon plan
// strictly more arrivals under a burst than at the base rate, and the
// burst plan stays deterministic.
func TestBuildPlanBurstDensifiesArrivals(t *testing.T) {
	cfg := testConfig("")
	cfg.requests = 0
	cfg.rate = 20
	cfg.duration = time.Second
	flat := buildPlan(cfg, 64, 64)
	cfg.burstRPS = 200
	cfg.rampS = 0.5
	burst := buildPlan(cfg, 64, 64)
	if len(burst) <= len(flat) {
		t.Fatalf("burst plan has %d arrivals, flat plan %d: the ramp added none", len(burst), len(flat))
	}
	again := buildPlan(cfg, 64, 64)
	if len(again) != len(burst) {
		t.Fatalf("burst plan not deterministic: %d vs %d arrivals", len(again), len(burst))
	}
	for i := range burst {
		if burst[i].at != again[i].at {
			t.Fatalf("burst arrival %d differs across identical builds", i)
		}
	}
}

// TestRunPressureCounters: a stats endpoint exposing the pressure surface
// (the `preemptions` key is the sentinel) gets its counters folded into
// the snapshot as LoadgenPressure; one without it does not.
func TestRunPressureCounters(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"status": "ok", "vocab": 64, "maxseq": 64})
	})
	mux.HandleFunc("/v1/generate", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprintf(w, "data: {\"token\":1,\"text\":\"w\",\"index\":0}\n\n")
		fmt.Fprintf(w, "data: {\"tokens\":[1],\"text\":\"w\",\"finish_reason\":\"length\"}\n\n")
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{
			"preemptions":         3,
			"admission_deferred":  7,
			"panics":              0,
			"rejected":            2,
			"kv_budget_bytes":     1 << 20,
			"kv_high_water_bytes": 1<<20 - 4096,
		})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	snap, _, err := run(testConfig(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	pc := snap["LoadgenPressure"]
	if pc == nil {
		t.Fatalf("pressure counters missing from snapshot: %v", snap)
	}
	if pc["preemptions"] != 3 || pc["admission_deferred"] != 7 || pc["kv_budget_bytes"] != 1<<20 {
		t.Fatalf("pressure counters mangled: %v", pc)
	}

	// stubServe's stats have no pressure surface: no section.
	plain := stubServe(t, 64, 64)
	snap, _, err = run(testConfig(plain.URL))
	if err != nil {
		t.Fatal(err)
	}
	if _, present := snap["LoadgenPressure"]; present {
		t.Fatal("LoadgenPressure section present against a server without the pressure surface")
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// stubServe mimics the aptq-serve surface the loadgen touches: /healthz
// with the model shape and a streaming /v1/generate that echoes
// max_tokens token events plus the final response event.
func stubServe(t *testing.T, vocab, maxSeq int) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"status": "ok", "vocab": vocab, "maxseq": maxSeq})
	})
	mux.HandleFunc("/v1/generate", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Tokens    []int `json:"tokens"`
			MaxTokens int   `json:"max_tokens"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Tokens) == 0 {
			http.Error(w, "bad request", http.StatusBadRequest)
			return
		}
		if len(req.Tokens) > maxSeq || req.MaxTokens < 1 {
			http.Error(w, "bad plan", http.StatusBadRequest)
			return
		}
		for _, tok := range req.Tokens {
			if tok < 0 || tok >= vocab {
				http.Error(w, "token out of vocab", http.StatusBadRequest)
				return
			}
		}
		w.Header().Set("Content-Type", "text/event-stream")
		for i := 0; i < req.MaxTokens; i++ {
			fmt.Fprintf(w, "data: {\"token\":%d,\"text\":\"w\",\"index\":%d}\n\n", i%vocab, i)
		}
		fmt.Fprintf(w, "data: {\"tokens\":[],\"text\":\"\",\"finish_reason\":\"length\"}\n\n")
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{
			"kv_unique_bytes":  1 << 20,
			"kv_logical_bytes": 5 << 20,
			"kv_pages":         64,
			"kv_sharing_ratio": 5.0,
			"requests_total":   1,
		})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func testConfig(url string) config {
	return config{
		url: url, rate: 500, duration: 200 * time.Millisecond, requests: 20,
		seed: 7, promptMin: 2, promptMax: 8, outMin: 2, outMax: 10,
		prefixPop: 2, prefixLen: 4, prefixFrac: 0.5, priorities: 3,
		maxErrorRate: -1,
	}
}

// TestBuildPlanDeterministic: the plan is a pure function of the seed —
// same seed, same workload; different seed, different workload.
func TestBuildPlanDeterministic(t *testing.T) {
	cfg := testConfig("")
	a := buildPlan(cfg, 64, 64)
	b := buildPlan(cfg, 64, 64)
	if len(a) == 0 {
		t.Fatal("empty plan")
	}
	if len(a) != len(b) {
		t.Fatalf("plan lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		ja, _ := json.Marshal(a[i].body)
		jb, _ := json.Marshal(b[i].body)
		if a[i].at != b[i].at || string(ja) != string(jb) {
			t.Fatalf("call %d differs across identical seeds:\n%s\n%s", i, ja, jb)
		}
	}
	cfg.seed = 8
	c := buildPlan(cfg, 64, 64)
	same := len(a) == len(c)
	for i := 0; same && i < len(a); i++ {
		ja, _ := json.Marshal(a[i].body)
		jc, _ := json.Marshal(c[i].body)
		same = string(ja) == string(jc)
	}
	if same {
		t.Fatal("different seeds produced an identical workload")
	}
}

// TestBuildPlanShapeConstraints: every planned request fits the model
// (prompt within vocab and context, prompt+budget within context) and the
// shared-prefix knobs behave at their extremes.
func TestBuildPlanShapeConstraints(t *testing.T) {
	const vocab, maxSeq = 16, 24
	cfg := testConfig("")
	cfg.promptMax, cfg.outMax = 40, 40 // force clamping against maxSeq
	cfg.prefixFrac = 1
	plan := buildPlan(cfg, vocab, maxSeq)
	prefixed := 0
	for i, c := range plan {
		prompt := c.body["tokens"].([]int)
		maxTok := c.body["max_tokens"].(int)
		if len(prompt) == 0 || len(prompt) > maxSeq || maxTok < 1 || len(prompt)+maxTok > maxSeq {
			t.Fatalf("call %d out of shape: prompt %d, max_tokens %d, maxseq %d", i, len(prompt), maxTok, maxSeq)
		}
		for _, tok := range prompt {
			if tok < 0 || tok >= vocab {
				t.Fatalf("call %d: token %d outside vocab %d", i, tok, vocab)
			}
		}
		if p := c.body["priority"].(int); p < 0 || p >= cfg.priorities {
			t.Fatalf("call %d: priority %d outside [0,%d)", i, p, cfg.priorities)
		}
		if i > 0 && c.at < plan[i-1].at {
			t.Fatalf("arrivals not monotonic at call %d", i)
		}
	}
	// With prefixFrac=1 every prompt long enough must open with one of the
	// shared prefixes; count distinct openings instead of re-deriving them.
	heads := map[string]int{}
	for _, c := range plan {
		prompt := c.body["tokens"].([]int)
		if len(prompt) >= cfg.prefixLen {
			h, _ := json.Marshal(prompt[:cfg.prefixLen])
			heads[string(h)]++
			prefixed++
		}
	}
	if prefixed == 0 || len(heads) > cfg.prefixPop {
		t.Fatalf("prefixFrac=1 yielded %d prefixed prompts over %d heads (population %d)", prefixed, len(heads), cfg.prefixPop)
	}
}

// TestRunEndToEnd drives the full loadgen loop against the stub server
// and checks the snapshot schema benchjson -compare consumes.
func TestRunEndToEnd(t *testing.T) {
	ts := stubServe(t, 64, 64)
	cfg := testConfig(ts.URL)
	snap, failures, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) > 0 {
		t.Fatalf("unexpected gate failures: %v", failures)
	}
	sum := snap["LoadgenSummary"]
	if sum["requests"] < 1 || sum["errors"] != 0 || sum["error_rate"] != 0 {
		t.Fatalf("summary: %v", sum)
	}
	ttft := snap["LoadgenTTFT"]
	if ttft["samples"] != sum["requests"] || ttft["p50_ms"] <= 0 || ttft["p99_ms"] < ttft["p50_ms"] {
		t.Fatalf("ttft: %v (summary %v)", ttft, sum)
	}
	itl := snap["LoadgenInterToken"]
	if itl["p99_ms"] < itl["p50_ms"] {
		t.Fatalf("itl: %v", itl)
	}
	if sum["tok_per_s"] <= 0 {
		t.Fatalf("tok_per_s: %v", sum)
	}
}

// TestRunSharedPrefix: -shared-prefix overrides the prefix length (the
// page-sized hot case for the server's paged KV cache) and folds the
// server's KV sharing counters from /v1/stats into the snapshot.
func TestRunSharedPrefix(t *testing.T) {
	ts := stubServe(t, 64, 64)
	cfg := testConfig(ts.URL)
	cfg.sharedPref = 16
	cfg.prefixFrac = 1
	snap, failures, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) > 0 {
		t.Fatalf("unexpected gate failures: %v", failures)
	}
	kv := snap["LoadgenKVSharing"]
	if kv == nil {
		t.Fatalf("KV sharing section missing from snapshot: %v", snap)
	}
	if kv["kv_unique_bytes"] != 1<<20 || kv["kv_logical_bytes"] != 5<<20 || kv["kv_pages"] != 64 || kv["kv_sharing_ratio"] != 5 {
		t.Fatalf("KV sharing counters not forwarded: %v", kv)
	}
	// The override reshapes the plan itself: with prefixFrac=1 every prompt
	// must now carry at least the 16-token shared prefix, not the 4-token
	// one from testConfig.
	cfg2 := cfg
	cfg2.url = ""
	for i, c := range buildPlan(cfg2.withPrefixOverride(), 64, 64) {
		if got := len(c.body["tokens"].([]int)); got < 16 {
			t.Fatalf("call %d: prompt %d tokens, want >= shared prefix 16", i, got)
		}
	}
	// Without the knob the stats endpoint is never consulted and the
	// section stays absent.
	cfg.sharedPref = 0
	snap, _, err = run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := snap["LoadgenKVSharing"]; ok {
		t.Fatal("KV sharing section present without -shared-prefix")
	}
}

// TestRunGates: the self-gates trip on an impossible TTFT bound and on a
// zero error budget when the server rejects everything.
func TestRunGates(t *testing.T) {
	ts := stubServe(t, 64, 64)
	cfg := testConfig(ts.URL)
	cfg.maxP99TTFTMs = 1e-9 // no real TTFT can beat a nanosecond bound
	if _, failures, err := run(cfg); err != nil || len(failures) != 1 {
		t.Fatalf("ttft gate: failures=%v err=%v", failures, err)
	}

	// A server that 500s every generate must trip a zero error budget.
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"vocab": 64, "maxseq": 64})
	})
	mux.HandleFunc("/v1/generate", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	bad := httptest.NewServer(mux)
	defer bad.Close()
	cfg = testConfig(bad.URL)
	cfg.maxErrorRate = 0
	_, failures, err := run(cfg)
	if err != nil || len(failures) != 1 {
		t.Fatalf("error-rate gate: failures=%v err=%v", failures, err)
	}
}

// TestDoRequestParsesSSE pins the SSE accounting: N token events mean N
// tokens, N-1 usable inter-token gaps (the final response-event gap is
// dropped), and a measured TTFT.
func TestDoRequestParsesSSE(t *testing.T) {
	ts := stubServe(t, 64, 64)
	body := map[string]any{"tokens": []int{1, 2}, "max_tokens": 5, "seed": 1}
	ttft, itl, tokens, failed := doRequest(http.DefaultClient, ts.URL, body)
	if failed {
		t.Fatal("request failed against the stub")
	}
	if tokens != 5 || ttft <= 0 || len(itl) != 4 {
		t.Fatalf("tokens=%d ttft=%v itl=%d samples, want 5 tokens and 4 gaps", tokens, ttft, len(itl))
	}
	if _, _, _, failed := doRequest(http.DefaultClient, ts.URL, map[string]any{"tokens": []int{}}); !failed {
		t.Fatal("bad request not reported as failed")
	}
}

// TestSplitURLs: the -replicas parser drops blanks and canonicalises
// trailing slashes, so target URLs concatenate cleanly with paths.
func TestSplitURLs(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"http://a:1", []string{"http://a:1"}},
		{" http://a:1/ ,, http://b:2 ", []string{"http://a:1", "http://b:2"}},
	}
	for _, c := range cases {
		got := splitURLs(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("splitURLs(%q) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("splitURLs(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}

// TestRunReplicasRoundRobin: -replicas spreads the plan across every
// target (the affinity-free baseline the router tests compare against),
// while shape and stats sampling stick to the first target.
func TestRunReplicasRoundRobin(t *testing.T) {
	var mu sync.Mutex
	hits := map[string]int{}
	a := stubServeCounting(t, 64, 64, func() { mu.Lock(); hits["a"]++; mu.Unlock() })
	b := stubServeCounting(t, 64, 64, func() { mu.Lock(); hits["b"]++; mu.Unlock() })
	cfg := testConfig("")
	cfg.replicas = a.URL + "," + b.URL
	snap, failures, err := run(cfg)
	if err != nil || len(failures) > 0 {
		t.Fatalf("run: failures=%v err=%v", failures, err)
	}
	mu.Lock()
	defer mu.Unlock()
	total := hits["a"] + hits["b"]
	if float64(total) != snap["LoadgenSummary"]["requests"] {
		t.Fatalf("replicas saw %d generates, summary says %v", total, snap["LoadgenSummary"]["requests"])
	}
	if hits["a"] == 0 || hits["b"] == 0 {
		t.Fatalf("round-robin left a replica idle: %v", hits)
	}
	if diff := hits["a"] - hits["b"]; diff < -1 || diff > 1 {
		t.Fatalf("round-robin imbalance: %v", hits)
	}
}

// stubServeCounting is stubServe with a per-generate callback.
func stubServeCounting(t *testing.T, vocab, maxSeq int, onGenerate func()) *httptest.Server {
	t.Helper()
	inner := stubServe(t, vocab, maxSeq)
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/generate" {
			onGenerate()
		}
		req, err := http.NewRequest(r.Method, inner.URL+r.URL.String(), r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
	}))
	t.Cleanup(proxy.Close)
	return proxy
}

// TestRunRouterCounters: pointing the loadgen at a router-shaped stats
// endpoint folds router_* counters into the snapshot (prefix stripped);
// a plain replica's stats map leaves the section absent.
func TestRunRouterCounters(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"status": "ok", "vocab": 64, "maxseq": 64})
	})
	mux.HandleFunc("/v1/generate", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprintf(w, "data: {\"token\":1,\"text\":\"w\",\"index\":0}\n\n")
		fmt.Fprintf(w, "data: {\"tokens\":[],\"text\":\"\",\"finish_reason\":\"length\"}\n\n")
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{
			"requests_total":  9,
			"router_requests": 9,
			"router_retries":  2,
			"router_spills":   1,
			"replicas":        []map[string]any{{"id": 0}}, // non-numeric: must be ignored
		})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	snap, _, err := run(testConfig(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	rc := snap["LoadgenRouter"]
	if rc == nil {
		t.Fatalf("router counters missing from snapshot: %v", snap)
	}
	if rc["requests"] != 9 || rc["retries"] != 2 || rc["spills"] != 1 {
		t.Fatalf("router counters mangled: %v", rc)
	}
	if _, ok := rc["requests_total"]; ok {
		t.Fatalf("non-router key leaked into the router section: %v", rc)
	}

	// A plain replica (stubServe's stats carry no router_* keys) must not
	// grow the section.
	plain := stubServe(t, 64, 64)
	snap, _, err = run(testConfig(plain.URL))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := snap["LoadgenRouter"]; ok {
		t.Fatal("LoadgenRouter section present against a plain replica")
	}
}

// TestPercentileNearestRank matches the scheduler's definition.
func TestPercentileNearestRank(t *testing.T) {
	s := []time.Duration{5, 1, 3, 2, 4, 9, 7, 8, 6, 10}
	if got := percentile(s, 50); got != 5 {
		t.Fatalf("p50 = %v, want 5", got)
	}
	if got := percentile(s, 99); got != 10 {
		t.Fatalf("p99 = %v, want 10", got)
	}
	if got := percentile(nil, 99); got != 0 {
		t.Fatalf("p99 of empty = %v, want 0", got)
	}
}

// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON object on stdout: benchmark name (GOMAXPROCS
// suffix stripped) to a flat metric map — ns_per_op, bytes_per_op,
// allocs_per_op, iterations, and any custom b.ReportMetric units (tok/s,
// weight-bytes, ...) under sanitized keys. It is the emitter behind
// `make bench-json`, which snapshots the tier-1 benchmark set to
// BENCH_PR4.json so the performance trajectory of the repository is a
// diffable artifact instead of scrollback.
//
//	go test -run='^$' -bench=. -benchmem ./... | benchjson > bench.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

func main() {
	out, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// metricKey maps a benchmark output unit to its JSON key.
func metricKey(unit string) string {
	switch unit {
	case "ns/op":
		return "ns_per_op"
	case "B/op":
		return "bytes_per_op"
	case "allocs/op":
		return "allocs_per_op"
	case "tok/s":
		return "tok_per_s"
	default:
		// Sanitize whatever custom unit a benchmark reported.
		key := make([]byte, 0, len(unit))
		for i := 0; i < len(unit); i++ {
			c := unit[i]
			switch {
			case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
				key = append(key, c)
			default:
				key = append(key, '_')
			}
		}
		return string(key)
	}
}

// stripProcs removes the -N GOMAXPROCS suffix go test appends to
// benchmark names, so snapshots from differently sized machines diff
// cleanly.
func stripProcs(name string) string {
	for i := len(name) - 1; i > 0; i-- {
		c := name[i]
		if c >= '0' && c <= '9' {
			continue
		}
		if c == '-' && i < len(name)-1 {
			return name[:i]
		}
		break
	}
	return name
}

// parseBench reads `go test -bench` output and collects one metric map
// per benchmark. A benchmark line is
//
//	BenchmarkName-8   <iterations>   <value> <unit>   <value> <unit> ...
//
// Non-benchmark lines (goos/pkg headers, PASS/ok trailers) are skipped.
// A benchmark appearing twice keeps the last run.
func parseBench(r io.Reader) (map[string]map[string]float64, error) {
	out := make(map[string]map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		if !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		var iters float64
		if _, err := fmt.Sscanf(fields[1], "%g", &iters); err != nil {
			continue
		}
		m := map[string]float64{"iterations": iters}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			var v float64
			if _, err := fmt.Sscanf(fields[i], "%g", &v); err != nil {
				ok = false
				break
			}
			m[metricKey(fields[i+1])] = v
		}
		if ok {
			out[stripProcs(fields[0])] = m
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

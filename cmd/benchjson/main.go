// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON object on stdout: benchmark name (GOMAXPROCS
// suffix stripped) to a flat metric map — ns_per_op, bytes_per_op,
// allocs_per_op, iterations, and any custom b.ReportMetric units (tok/s,
// weight-bytes, ...) under sanitized keys. It is the emitter behind
// `make bench-json`, which snapshots the tier-1 benchmark set to a
// BENCH_PR*.json artifact so the performance trajectory of the repository
// is a diffable artifact instead of scrollback.
//
//	go test -run='^$' -bench=. -benchmem ./... | benchjson > bench.json
//
// With -compare old.json, benchjson instead diffs a new snapshot (a JSON
// file given as the positional argument, or bench text on stdin) against
// the prior one and exits non-zero when a shared benchmark regressed past
// the threshold: tok/s dropping by more than -threshold (fractional),
// allocs/op growing by more than -threshold and more than -alloc-slack
// absolute allocations (slack absorbs sync.Pool noise), any *_ms metric
// — latency percentiles are lower-is-better — growing by more than
// -ms-threshold, or any *_bytes metric — resident-memory reporters like
// the paged KV cache's kv-unique-bytes are likewise lower-is-better —
// growing by more than -bytes-threshold (B/op from -benchmem is keyed
// bytes_per_op and stays under the allocation rules, not this one). The
// *_ms rule is what lets the same -compare gate diff aptq-loadgen latency
// snapshots (LoadgenTTFT p99_ms and friends) exactly like benchmark
// throughput; the *_bytes rule is what gates resident KV bytes in `make
// bench-compare`. This is the CI guardrail that keeps the zero-allocation
// decode/prefill hot paths, the tok/s trajectory, the serving latency
// percentiles and the resident KV footprint from silently rotting; the
// default thresholds are deliberately loose because single-iteration CI
// numbers (and cross-machine baselines) are noisy — they catch
// step-function regressions, not percent-level drift (byte metrics are
// deterministic, so their default threshold is tighter).
//
//	make bench-json BENCH_JSON=BENCH_NEW.json
//	benchjson -compare BENCH_PR4.json BENCH_NEW.json
//	benchjson -compare LATENCY_OLD.json LATENCY_NEW.json -ms-threshold 1.0
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

func main() {
	var (
		compare    = flag.String("compare", "", "prior snapshot JSON to diff against; regressions exit non-zero")
		threshold  = flag.Float64("threshold", 0.5, "fractional regression tolerance for tok/s drops and allocs/op growth")
		allocSlack = flag.Float64("alloc-slack", 16, "absolute allocs/op growth ignored regardless of ratio (pool noise)")
		msThresh   = flag.Float64("ms-threshold", 2.0, "fractional growth tolerance for lower-is-better *_ms latency metrics")
		bytesThr   = flag.Float64("bytes-threshold", 0.25, "fractional growth tolerance for lower-is-better *_bytes residency metrics")
	)
	flag.Parse()
	if *compare == "" {
		out, err := parseBench(os.Stdin)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		return
	}
	old, err := readSnapshot(*compare)
	if err != nil {
		fatal(err)
	}
	var cur map[string]map[string]float64
	if flag.NArg() > 0 {
		if cur, err = readSnapshot(flag.Arg(0)); err != nil {
			fatal(err)
		}
	} else if cur, err = parseBench(os.Stdin); err != nil {
		fatal(err)
	}
	regressions := compareSnapshots(old, cur, *threshold, *allocSlack, *msThresh, *bytesThr, os.Stdout)
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) past threshold:\n", len(regressions))
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}

// readSnapshot loads a JSON snapshot previously produced by benchjson.
func readSnapshot(path string) (map[string]map[string]float64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]map[string]float64
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return m, nil
}

// compareSnapshots prints a per-benchmark diff of tok/s and allocs/op for
// benchmarks present in both snapshots and returns a description of every
// regression: tok/s below old*(1-threshold), allocs/op above
// old*(1+threshold) by more than slack absolute allocations, a
// lower-is-better *_ms latency metric above old*(1+msThreshold), or a
// lower-is-better *_bytes residency metric above old*(1+bytesThreshold)
// (bytes_per_op — B/op from -benchmem — is excluded: it falls under the
// allocation rules). Benchmarks only in one snapshot are reported
// informationally, never as regressions (the suite is allowed to grow and
// retire entries).
func compareSnapshots(old, cur map[string]map[string]float64, threshold, slack, msThreshold, bytesThreshold float64, w io.Writer) []string {
	names := make([]string, 0, len(cur))
	for name := range cur {
		if _, ok := old[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var regressions []string
	fmt.Fprintf(w, "%-34s %14s %14s %12s %12s\n", "benchmark", "tok/s old", "tok/s new", "allocs old", "allocs new")
	for _, name := range names {
		o, c := old[name], cur[name]
		oTok, oHasTok := o["tok_per_s"]
		cTok, cHasTok := c["tok_per_s"]
		oAll, oHasAll := o["allocs_per_op"]
		cAll, cHasAll := c["allocs_per_op"]
		fmt.Fprintf(w, "%-34s %14s %14s %12s %12s\n", name,
			fmtMetric(oTok, oHasTok), fmtMetric(cTok, cHasTok),
			fmtMetric(oAll, oHasAll), fmtMetric(cAll, cHasAll))
		if oHasTok && cHasTok && oTok > 0 && cTok < oTok*(1-threshold) {
			regressions = append(regressions,
				fmt.Sprintf("%s: tok/s %.0f -> %.0f (-%.0f%%)", name, oTok, cTok, 100*(1-cTok/oTok)))
		}
		if oHasAll && cHasAll && cAll > oAll*(1+threshold) && cAll-oAll > slack {
			regressions = append(regressions,
				fmt.Sprintf("%s: allocs/op %.0f -> %.0f", name, oAll, cAll))
		}
		// Latency metrics (*_ms suffix) are lower-is-better: growth past
		// msThreshold is a regression. This covers the aptq-loadgen
		// percentiles (p50_ms/p99_ms) and any future *_ms reporters.
		var msKeys []string
		for key := range o {
			if _, ok := c[key]; ok && strings.HasSuffix(key, "_ms") {
				msKeys = append(msKeys, key)
			}
		}
		sort.Strings(msKeys)
		for _, key := range msKeys {
			oV, cV := o[key], c[key]
			fmt.Fprintf(w, "  %-32s %11.2fms %11.2fms\n", key, oV, cV)
			if oV > 0 && cV > oV*(1+msThreshold) {
				regressions = append(regressions,
					fmt.Sprintf("%s: %s %.2f -> %.2f (+%.0f%%)", name, key, oV, cV, 100*(cV/oV-1)))
			}
		}
		// Residency metrics (*_bytes suffix, e.g. the paged KV cache's
		// kv-unique-bytes) are likewise lower-is-better: growth past
		// bytesThreshold is a regression. bytes_per_op (B/op) ends in _op
		// and is deliberately outside this class — allocation size noise is
		// covered by the allocs/op rule.
		var byteKeys []string
		for key := range o {
			if _, ok := c[key]; ok && strings.HasSuffix(key, "_bytes") {
				byteKeys = append(byteKeys, key)
			}
		}
		sort.Strings(byteKeys)
		for _, key := range byteKeys {
			oV, cV := o[key], c[key]
			fmt.Fprintf(w, "  %-32s %12.0fB %12.0fB\n", key, oV, cV)
			if oV > 0 && cV > oV*(1+bytesThreshold) {
				regressions = append(regressions,
					fmt.Sprintf("%s: %s %.0f -> %.0f (+%.0f%%)", name, key, oV, cV, 100*(cV/oV-1)))
			}
		}
	}
	onlyIn := func(label string, a, b map[string]map[string]float64) {
		var extra []string
		for name := range a {
			if _, ok := b[name]; !ok {
				extra = append(extra, name)
			}
		}
		sort.Strings(extra)
		if len(extra) > 0 {
			fmt.Fprintf(w, "only in %s: %s\n", label, strings.Join(extra, ", "))
		}
	}
	onlyIn("old", old, cur)
	onlyIn("new", cur, old)
	return regressions
}

func fmtMetric(v float64, ok bool) string {
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%.0f", v)
}

// metricKey maps a benchmark output unit to its JSON key.
func metricKey(unit string) string {
	switch unit {
	case "ns/op":
		return "ns_per_op"
	case "B/op":
		return "bytes_per_op"
	case "allocs/op":
		return "allocs_per_op"
	case "tok/s":
		return "tok_per_s"
	default:
		// Sanitize whatever custom unit a benchmark reported.
		key := make([]byte, 0, len(unit))
		for i := 0; i < len(unit); i++ {
			c := unit[i]
			switch {
			case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
				key = append(key, c)
			default:
				key = append(key, '_')
			}
		}
		return string(key)
	}
}

// stripProcs removes the -N GOMAXPROCS suffix go test appends to
// benchmark names, so snapshots from differently sized machines diff
// cleanly.
func stripProcs(name string) string {
	for i := len(name) - 1; i > 0; i-- {
		c := name[i]
		if c >= '0' && c <= '9' {
			continue
		}
		if c == '-' && i < len(name)-1 {
			return name[:i]
		}
		break
	}
	return name
}

// parseBench reads `go test -bench` output and collects one metric map
// per benchmark. A benchmark line is
//
//	BenchmarkName-8   <iterations>   <value> <unit>   <value> <unit> ...
//
// Non-benchmark lines (goos/pkg headers, PASS/ok trailers) are skipped.
// A benchmark appearing twice keeps the last run.
func parseBench(r io.Reader) (map[string]map[string]float64, error) {
	out := make(map[string]map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		if !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		var iters float64
		if _, err := fmt.Sscanf(fields[1], "%g", &iters); err != nil {
			continue
		}
		m := map[string]float64{"iterations": iters}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			var v float64
			if _, err := fmt.Sscanf(fields[i], "%g", &v); err != nil {
				ok = false
				break
			}
			m[metricKey(fields[i+1])] = v
		}
		if ok {
			out[stripProcs(fields[0])] = m
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

package main

import (
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPrefillLoopFloat-8          5   42721784 ns/op   1498 tok/s   4872873 B/op   8209 allocs/op
BenchmarkPrefillChunkedFloat         5   18430615 ns/op   3472 tok/s   150848 B/op   27 allocs/op
BenchmarkMatVecPacked4Bit-8    1000   1234.5 ns/op   20640 weight-bytes
--- SKIP: BenchmarkSomething
PASS
ok  	repro	1.322s
`
	got, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	loop := got["BenchmarkPrefillLoopFloat"]
	if loop == nil {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", got)
	}
	if loop["ns_per_op"] != 42721784 || loop["tok_per_s"] != 1498 || loop["allocs_per_op"] != 8209 || loop["iterations"] != 5 {
		t.Fatalf("loop metrics: %v", loop)
	}
	chunked := got["BenchmarkPrefillChunkedFloat"]
	if chunked == nil || chunked["bytes_per_op"] != 150848 {
		t.Fatalf("suffix-free name mishandled: %v", got)
	}
	mv := got["BenchmarkMatVecPacked4Bit"]
	if mv == nil || mv["ns_per_op"] != 1234.5 || mv["weight_bytes"] != 20640 {
		t.Fatalf("custom metric: %v", mv)
	}
}

func TestParseBenchDuplicateKeepsLast(t *testing.T) {
	in := "BenchmarkX-4 1 10 ns/op\nBenchmarkX-4 1 20 ns/op\n"
	got, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkX"]["ns_per_op"] != 20 {
		t.Fatalf("duplicate handling: %v", got)
	}
}

func snap(rows ...[4]float64) map[string]map[string]float64 {
	names := []string{"BenchmarkA", "BenchmarkB", "BenchmarkC"}
	out := make(map[string]map[string]float64)
	for i, r := range rows {
		out[names[i]] = map[string]float64{"tok_per_s": r[0], "allocs_per_op": r[1], "ns_per_op": r[2], "iterations": r[3]}
	}
	return out
}

// TestCompareSnapshots pins the regression rules of -compare: a tok/s
// drop past the threshold regresses; allocs growth regresses only when it
// exceeds both the fractional threshold and the absolute slack; tok/s
// gains and benchmarks missing from one side never regress.
func TestCompareSnapshots(t *testing.T) {
	old := snap([4]float64{1000, 10, 1, 1}, [4]float64{2000, 0, 1, 1}, [4]float64{500, 100, 1, 1})
	var sb strings.Builder

	// Identical snapshots: clean.
	if regs := compareSnapshots(old, old, 0.25, 16, 2, 0.25, &sb); len(regs) != 0 {
		t.Fatalf("identical snapshots regressed: %v", regs)
	}
	// tok/s drop past threshold on A; small drop on B stays clean; C gains.
	cur := snap([4]float64{700, 10, 1, 1}, [4]float64{1900, 0, 1, 1}, [4]float64{800, 100, 1, 1})
	regs := compareSnapshots(old, cur, 0.25, 16, 2, 0.25, &sb)
	if len(regs) != 1 || !strings.Contains(regs[0], "BenchmarkA") || !strings.Contains(regs[0], "tok/s") {
		t.Fatalf("tok/s regression detection: %v", regs)
	}
	// Alloc growth within slack (0 -> 12) is pool noise, not a regression;
	// growth past ratio and slack (10 -> 60) is.
	cur = snap([4]float64{1000, 60, 1, 1}, [4]float64{2000, 12, 1, 1}, [4]float64{500, 100, 1, 1})
	regs = compareSnapshots(old, cur, 0.25, 16, 2, 0.25, &sb)
	if len(regs) != 1 || !strings.Contains(regs[0], "BenchmarkA") || !strings.Contains(regs[0], "allocs") {
		t.Fatalf("allocs regression detection: %v", regs)
	}
	// A benchmark only in one snapshot is informational, never a failure.
	deleted := snap([4]float64{1000, 10, 1, 1})
	if regs := compareSnapshots(old, deleted, 0.25, 16, 2, 0.25, &sb); len(regs) != 0 {
		t.Fatalf("retired benchmark treated as regression: %v", regs)
	}
	if !strings.Contains(sb.String(), "only in old") {
		t.Fatalf("missing-entry report absent:\n%s", sb.String())
	}
}

// latSnap builds a loadgen-shaped latency snapshot (the *_ms metrics the
// lower-is-better rule exists for).
func latSnap(ttftP50, ttftP99, itlP50, itlP99 float64) map[string]map[string]float64 {
	return map[string]map[string]float64{
		"LoadgenTTFT":       {"p50_ms": ttftP50, "p99_ms": ttftP99, "samples": 100},
		"LoadgenInterToken": {"p50_ms": itlP50, "p99_ms": itlP99, "samples": 900},
		"LoadgenSummary":    {"requests": 100, "errors": 0, "error_rate": 0, "tok_per_s": 5000},
	}
}

// TestCompareSnapshotsMsMetrics pins the lower-is-better *_ms rule: a
// latency percentile growing past -ms-threshold regresses, improvements
// and sub-threshold growth stay clean, and the acceptance scenario — an
// injected p99-TTFT regression — fails the compare.
func TestCompareSnapshotsMsMetrics(t *testing.T) {
	old := latSnap(4, 12, 1, 3)
	var sb strings.Builder

	// Identical and improved runs: clean.
	if regs := compareSnapshots(old, old, 0.25, 16, 1.0, 0.25, &sb); len(regs) != 0 {
		t.Fatalf("identical latency snapshots regressed: %v", regs)
	}
	if regs := compareSnapshots(old, latSnap(2, 6, 0.5, 1.5), 0.25, 16, 1.0, 0.25, &sb); len(regs) != 0 {
		t.Fatalf("improved latencies regressed: %v", regs)
	}
	// Growth inside the threshold (12 -> 20 at msThreshold 1.0) stays clean.
	if regs := compareSnapshots(old, latSnap(4, 20, 1, 3), 0.25, 16, 1.0, 0.25, &sb); len(regs) != 0 {
		t.Fatalf("sub-threshold latency growth regressed: %v", regs)
	}
	// Injected p99-TTFT regression: 12ms -> 60ms blows a 1.0 threshold.
	regs := compareSnapshots(old, latSnap(4, 60, 1, 3), 0.25, 16, 1.0, 0.25, &sb)
	if len(regs) != 1 || !strings.Contains(regs[0], "LoadgenTTFT") || !strings.Contains(regs[0], "p99_ms") {
		t.Fatalf("injected p99 TTFT regression not caught: %v", regs)
	}
	// The *_ms rule never fires on higher-is-better metrics: a tok_per_s
	// collapse in the same snapshot is the tok/s rule's job (and samples /
	// error counters are not *_ms keys).
	slow := latSnap(4, 12, 1, 3)
	slow["LoadgenSummary"]["tok_per_s"] = 100
	regs = compareSnapshots(old, slow, 0.25, 16, 1.0, 0.25, &sb)
	if len(regs) != 1 || !strings.Contains(regs[0], "tok/s") {
		t.Fatalf("tok/s drop in a latency snapshot: %v", regs)
	}
	// A zero old value (no samples recorded) never divides into a fake
	// infinite regression.
	zero := latSnap(0, 0, 0, 0)
	if regs := compareSnapshots(zero, latSnap(4, 12, 1, 3), 0.25, 16, 1.0, 0.25, &sb); len(regs) != 0 {
		t.Fatalf("zero-baseline latency treated as regression: %v", regs)
	}
	if !strings.Contains(sb.String(), "p99_ms") {
		t.Fatalf("ms metrics missing from the diff output:\n%s", sb.String())
	}
}

// bytesSnap builds a paged-KV-shaped residency snapshot (the *_bytes
// metrics the lower-is-better bytes rule exists for).
func bytesSnap(unique, logical, bPerOp float64) map[string]map[string]float64 {
	return map[string]map[string]float64{
		"BenchmarkPrefixShareResidentBytesShared": {
			"kv_unique_bytes":  unique,
			"kv_logical_bytes": logical,
			"bytes_per_op":     bPerOp,
			"ns_per_op":        1,
			"iterations":       1,
		},
	}
}

// TestCompareSnapshotsBytesMetrics pins the lower-is-better *_bytes rule:
// resident-KV growth past -bytes-threshold regresses (the sharing-ratio
// guardrail of make bench-compare), improvements and sub-threshold growth
// stay clean, and bytes_per_op — B/op allocation noise — never trips it.
func TestCompareSnapshotsBytesMetrics(t *testing.T) {
	old := bytesSnap(2e6, 9e6, 1000)
	var sb strings.Builder

	// Identical and improved residency: clean.
	if regs := compareSnapshots(old, old, 0.25, 16, 2, 0.25, &sb); len(regs) != 0 {
		t.Fatalf("identical bytes snapshots regressed: %v", regs)
	}
	if regs := compareSnapshots(old, bytesSnap(1e6, 9e6, 1000), 0.25, 16, 2, 0.25, &sb); len(regs) != 0 {
		t.Fatalf("improved residency regressed: %v", regs)
	}
	// Growth inside the threshold (2e6 -> 2.4e6 at 0.25) stays clean.
	if regs := compareSnapshots(old, bytesSnap(2.4e6, 9e6, 1000), 0.25, 16, 2, 0.25, &sb); len(regs) != 0 {
		t.Fatalf("sub-threshold residency growth regressed: %v", regs)
	}
	// Losing the sharing (2e6 -> 8e6 unique: every slot private again)
	// blows the threshold — the acceptance scenario this rule gates.
	regs := compareSnapshots(old, bytesSnap(8e6, 9e6, 1000), 0.25, 16, 2, 0.25, &sb)
	if len(regs) != 1 || !strings.Contains(regs[0], "kv_unique_bytes") {
		t.Fatalf("lost sharing not caught: %v", regs)
	}
	// bytes_per_op is B/op, not a residency metric: a 10x jump there is
	// the allocation rules' business, not the *_bytes rule's.
	if regs := compareSnapshots(old, bytesSnap(2e6, 9e6, 10000), 0.25, 16, 2, 0.25, &sb); len(regs) != 0 {
		t.Fatalf("bytes_per_op tripped the *_bytes rule: %v", regs)
	}
	// A zero old value never divides into a fake infinite regression.
	if regs := compareSnapshots(bytesSnap(0, 0, 0), old, 0.25, 16, 2, 0.25, &sb); len(regs) != 0 {
		t.Fatalf("zero-baseline residency treated as regression: %v", regs)
	}
	if !strings.Contains(sb.String(), "kv_unique_bytes") {
		t.Fatalf("bytes metrics missing from the diff output:\n%s", sb.String())
	}
}

package main

import (
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPrefillLoopFloat-8          5   42721784 ns/op   1498 tok/s   4872873 B/op   8209 allocs/op
BenchmarkPrefillChunkedFloat         5   18430615 ns/op   3472 tok/s   150848 B/op   27 allocs/op
BenchmarkMatVecPacked4Bit-8    1000   1234.5 ns/op   20640 weight-bytes
--- SKIP: BenchmarkSomething
PASS
ok  	repro	1.322s
`
	got, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	loop := got["BenchmarkPrefillLoopFloat"]
	if loop == nil {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", got)
	}
	if loop["ns_per_op"] != 42721784 || loop["tok_per_s"] != 1498 || loop["allocs_per_op"] != 8209 || loop["iterations"] != 5 {
		t.Fatalf("loop metrics: %v", loop)
	}
	chunked := got["BenchmarkPrefillChunkedFloat"]
	if chunked == nil || chunked["bytes_per_op"] != 150848 {
		t.Fatalf("suffix-free name mishandled: %v", got)
	}
	mv := got["BenchmarkMatVecPacked4Bit"]
	if mv == nil || mv["ns_per_op"] != 1234.5 || mv["weight_bytes"] != 20640 {
		t.Fatalf("custom metric: %v", mv)
	}
}

func TestParseBenchDuplicateKeepsLast(t *testing.T) {
	in := "BenchmarkX-4 1 10 ns/op\nBenchmarkX-4 1 20 ns/op\n"
	got, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkX"]["ns_per_op"] != 20 {
		t.Fatalf("duplicate handling: %v", got)
	}
}

// Continuousbatch: serving mixed-length traffic with the
// continuous-batching scheduler. A pretrained model is quantized with APTQ
// and packed, then a skewed workload — short lookups next to long
// generations, some with stop tokens — is pushed through a serve.Scheduler
// whose slots recycle the moment a sequence finishes. The same workload is
// also decoded in lockstep waves (infer.Batch, every sequence forced to
// the wave's longest budget) to show what continuous batching buys.
//
// Run with:
//
//	go run ./examples/continuousbatch
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/infer"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/train"
)

const slots = 4

func main() {
	vocab := data.NewVocabulary(64)
	src := data.NewC4Like(64)
	cfg := model.Config{Name: "continuousbatch", Vocab: 64, Dim: 32, Heads: 4, Layers: 3, FF: 64, MaxSeq: 64, RopeBase: 10000}
	m := model.New(cfg, 1)
	fmt.Println("pretraining...")
	train.Train(m, src, train.Config{Steps: 400, BatchSize: 4, SeqLen: 32, LR: 3e-3, Warmup: 20, ClipNorm: 1, Seed: 1})

	// Serve from the packed mixed 2/4-bit form: one resident compressed copy
	// shared by every slot.
	calib := data.SampleCalibration(rand.New(rand.NewSource(42)), src, 24, 32)
	opts := core.DefaultOptions(0.75)
	opts.GroupSize = 16
	res, err := core.Quantize(m, calib, opts)
	if err != nil {
		log.Fatal(err)
	}
	qm, err := res.PackedModel()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("packed weights resident once for all %d slots: %d bytes (%.1fx smaller)\n\n",
		slots, qm.PackedWeightBytes(), qm.CompressionRatio())

	// A skewed workload: mostly short requests, a few long ones.
	rng := rand.New(rand.NewSource(7))
	reqs := make([]serve.Request, 12)
	for i := range reqs {
		budget := 4 + rng.Intn(6)
		if i%4 == 0 {
			budget = 28 + rng.Intn(8)
		}
		reqs[i] = serve.Request{
			ID:          fmt.Sprintf("req-%02d", i),
			Prompt:      src.Generate(rng, 1+rng.Intn(6)),
			MaxTokens:   budget,
			Temperature: 0.8,
			Seed:        int64(100 + i),
		}
	}

	sched := serve.New(qm.Model, serve.Options{Slots: slots, EOS: -1})
	start := time.Now()
	results, err := sched.GenerateAll(reqs)
	if err != nil {
		log.Fatal(err)
	}
	continuous := time.Since(start)
	sched.Close()

	useful := 0
	for i, r := range results {
		if r.Err != nil {
			log.Fatalf("%s: %v", r.ID, r.Err)
		}
		useful += len(r.Tokens)
		fmt.Printf("%s (%-6s %2d tok): %s -> %s\n", r.ID, r.FinishReason, len(r.Tokens),
			vocab.Decode(reqs[i].Prompt), vocab.Decode(r.Tokens))
	}

	// The lockstep alternative: waves of `slots` sequences, every wave
	// decoding to its longest member's budget.
	start = time.Now()
	wasted := 0
	for lo := 0; lo < len(reqs); lo += slots {
		hi := min(lo+slots, len(reqs))
		wave := reqs[lo:hi]
		steps := 0
		for _, r := range wave {
			steps = max(steps, r.MaxTokens)
		}
		prompts := make([][]int, len(wave))
		for i, r := range wave {
			prompts[i] = r.Prompt
		}
		if _, errs, err := infer.NewBatch(qm.Model, len(wave)).Generate(1, prompts, steps, 0.8); err != nil {
			log.Fatal(err)
		} else {
			for _, e := range errs {
				if e != nil {
					log.Fatal(e)
				}
			}
		}
		for _, r := range wave {
			wasted += steps - r.MaxTokens
		}
	}
	lockstep := time.Since(start)

	fmt.Printf("\n%d useful tokens, %d slots\n", useful, slots)
	fmt.Printf("continuous batching: %8v  (%6.1f useful tok/s)\n",
		continuous.Round(time.Millisecond), float64(useful)/continuous.Seconds())
	fmt.Printf("lockstep waves:      %8v  (%6.1f useful tok/s, %d wasted padding steps)\n",
		lockstep.Round(time.Millisecond), float64(useful)/lockstep.Seconds(), wasted)
}

// Sensitivity: visualize per-layer quantization sensitivity — the analysis
// behind Figure 1 (right) of the paper and the input to APTQ's
// mixed-precision allocator. Prints the attention-aware Hessian traces and
// the Fisher-weighted sensitivity scores for every layer, grouped by block.
//
// Run with:
//
//	go run ./examples/sensitivity
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/train"
)

func main() {
	src := data.NewC4Like(64)
	cfg := model.Config{Name: "sens", Vocab: 64, Dim: 32, Heads: 4, Layers: 4, FF: 64, MaxSeq: 48, RopeBase: 10000}
	m := model.New(cfg, 1)
	fmt.Println("pretraining...")
	train.Train(m, src, train.Config{Steps: 400, BatchSize: 4, SeqLen: 32, LR: 3e-3, Warmup: 20, ClipNorm: 1, Seed: 1})

	calib := data.SampleCalibration(rand.New(rand.NewSource(42)), src, 24, 32)
	stats, err := core.CollectStats(m, calib, core.CollectOptions{Probes: 8, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// The paper's Figure 1 inset: average Hessian trace per block for
	// attention Q, attention V and MLP weights.
	fmt.Println("\nattention-aware avg Hessian trace per block (Figure 1 inset):")
	fmt.Printf("%-6s %-12s %-12s %-12s\n", "block", "attn_q", "attn_v", "mlp_up")
	q := stats.TraceProfile("q_proj")
	v := stats.TraceProfile("v_proj")
	up := stats.TraceProfile("up_proj")
	for b := range q {
		fmt.Printf("%-6d %-12.4g %-12.4g %-12.4g\n", b, q[b], v[b], up[b])
	}

	// Allocation scores under the default metric, as bars.
	sens := stats.Sensitivities(core.MetricFisherDelta, 2, 16, 1)
	norm := core.NormalizeScores(sens)
	fmt.Println("\nmixed-precision sensitivity scores (normalized, # = 2%):")
	for _, s := range norm {
		fmt.Printf("%-30s |%s\n", s.Name, strings.Repeat("#", int(s.Score*50)))
	}

	// What the allocator does with them at R=50%.
	alloc, err := core.Allocate(sens, 0.5, 4, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nallocation at R=50%%: achieved ratio %.0f%%, avg bits %.2f\n",
		alloc.Ratio()*100, alloc.AverageBits())
	four, two := 0, 0
	for _, bits := range alloc.Bits {
		if bits == 4 {
			four++
		} else {
			two++
		}
	}
	fmt.Printf("layers at 4 bit: %d, at 2 bit: %d\n", four, two)
}

// Mixed precision: sweep the 4-bit ratio R of APTQ's 2/4-bit scheme and
// chart perplexity against average bits — the experiment behind Figure 2 of
// the paper, on a small model so it runs in about a minute.
//
// Run with:
//
//	go run ./examples/mixedprecision
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/train"
)

func main() {
	src := data.NewC4Like(64)
	cfg := model.Config{Name: "sweep", Vocab: 64, Dim: 32, Heads: 4, Layers: 4, FF: 64, MaxSeq: 48, RopeBase: 10000}
	m := model.New(cfg, 1)
	fmt.Println("pretraining...")
	train.Train(m, src, train.Config{Steps: 400, BatchSize: 4, SeqLen: 32, LR: 3e-3, Warmup: 20, ClipNorm: 1, Seed: 1})

	calib := data.SampleCalibration(rand.New(rand.NewSource(42)), src, 24, 32)

	// Collect statistics once; they are shared across the whole sweep.
	stats, err := core.CollectStats(m, calib, core.CollectOptions{Probes: 4, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	segs := make([][]int, 60)
	for i := range segs {
		segs[i] = src.Generate(rng, 48)
	}
	fp := eval.PerplexityOnSegments(m, segs)
	fmt.Printf("\n%-8s %-9s %-10s %s\n", "ratio", "avg bits", "ppl", "degradation")

	worst := fp
	type pt struct{ ratio, ppl float64 }
	var pts []pt
	for _, ratio := range []float64{1.0, 0.9, 0.8, 0.75, 0.7, 0.6, 0.5, 0.25, 0.0} {
		opts := core.DefaultOptions(ratio)
		opts.GroupSize = 16
		res, err := core.QuantizeWithStats(m, stats, calib, opts)
		if err != nil {
			log.Fatal(err)
		}
		ppl := eval.PerplexityOnSegments(res.Model, segs)
		if ppl > worst {
			worst = ppl
		}
		pts = append(pts, pt{ratio, ppl})
		fmt.Printf("%-8.0f %-9.2f %-10.3f %+.2f%%\n", ratio*100, res.AvgBits, ppl, (ppl/fp-1)*100)
	}
	fmt.Printf("%-8s %-9s %-10.3f (reference)\n", "FP", "16", fp)

	// Terminal bar chart of degradation vs ratio.
	fmt.Println("\nperplexity vs 4-bit ratio (each # = 1% over FP):")
	for _, p := range pts {
		bars := int((p.ppl/fp - 1) * 100)
		if bars < 0 {
			bars = 0
		}
		fmt.Printf("R=%3.0f%% | %s\n", p.ratio*100, strings.Repeat("#", bars))
	}
}

// Packedserve: multi-sequence generation straight from the compressed
// representation — the serving-side half of the paper's edge-deployment
// story. A pretrained model is quantized with APTQ (mixed 2/4-bit), the
// packed model is built without ever re-materializing float64 weights for
// the quantizable projections, and a batch of KV-cached sessions decodes
// N sequences concurrently over the single shared packed copy.
//
// Run with:
//
//	go run ./examples/packedserve
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/infer"
	"repro/internal/model"
	"repro/internal/train"
)

func main() {
	const sequences = 4
	const tokensPer = 24

	vocab := data.NewVocabulary(64)
	src := data.NewC4Like(64)
	cfg := model.Config{Name: "packedserve", Vocab: 64, Dim: 32, Heads: 4, Layers: 3, FF: 64, MaxSeq: 64, RopeBase: 10000}
	m := model.New(cfg, 1)
	fmt.Println("pretraining...")
	train.Train(m, src, train.Config{Steps: 400, BatchSize: 4, SeqLen: 32, LR: 3e-3, Warmup: 20, ClipNorm: 1, Seed: 1})

	// Quantize with the paper's mixed 2/4-bit allocation at 75% high-bit.
	calib := data.SampleCalibration(rand.New(rand.NewSource(42)), src, 24, 32)
	opts := core.DefaultOptions(0.75)
	opts.GroupSize = 16
	res, err := core.Quantize(m, calib, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Swap every quantizable projection for its packed counterpart.
	qm, err := res.PackedModel()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resident quantizable weights: float64 %d bytes -> packed %d bytes (%.1fx smaller, %.2f avg bits)\n",
		qm.FloatWeightBytes(), qm.PackedWeightBytes(), qm.CompressionRatio(), res.AvgBits)

	// Decode N sequences concurrently from the one shared packed copy.
	rng := rand.New(rand.NewSource(7))
	prompts := make([][]int, sequences)
	for i := range prompts {
		prompts[i] = src.Generate(rng, 6)
	}
	batch := infer.NewBatch(qm.Model, sequences)
	start := time.Now()
	generated, errs, err := batch.Generate(7, prompts, tokensPer, 0.8)
	if err != nil {
		log.Fatal(err)
	}
	for i, e := range errs {
		if e != nil {
			log.Fatalf("sequence %d: %v", i, e)
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("generated %d sequences x %d tokens in %v (%.1f tok/s)\n\n",
		sequences, tokensPer, elapsed.Round(time.Millisecond),
		float64(sequences*tokensPer)/elapsed.Seconds())
	for i := range prompts {
		fmt.Printf("seq %d prompt:    %s\n", i, vocab.Decode(prompts[i]))
		fmt.Printf("seq %d generated: %s\n", i, vocab.Decode(generated[i]))
	}
}

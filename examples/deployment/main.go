// Deployment: the paper's motivating end-to-end story — pretrain, quantize
// with APTQ, write the bit-packed checkpoint an edge device would ship,
// reload it, and generate text with the KV-cached incremental decoder.
//
// Run with:
//
//	go run ./examples/deployment
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/infer"
	"repro/internal/model"
	"repro/internal/train"
)

func main() {
	vocab := data.NewVocabulary(64)
	src := data.NewC4Like(64)
	cfg := model.Config{Name: "deploy", Vocab: 64, Dim: 32, Heads: 4, Layers: 3, FF: 64, MaxSeq: 64, RopeBase: 10000}
	m := model.New(cfg, 1)
	fmt.Println("pretraining...")
	train.Train(m, src, train.Config{Steps: 400, BatchSize: 4, SeqLen: 32, LR: 3e-3, Warmup: 20, ClipNorm: 1, Seed: 1})

	// Quantize at an average of 3.5 bits and serialize in packed form.
	calib := data.SampleCalibration(rand.New(rand.NewSource(42)), src, 24, 32)
	opts := core.DefaultOptions(0.75)
	opts.GroupSize = 16
	res, err := core.Quantize(m, calib, opts)
	if err != nil {
		log.Fatal(err)
	}

	var packed, full bytes.Buffer
	if err := res.WriteCompressed(&packed); err != nil {
		log.Fatal(err)
	}
	if err := m.Save(&full); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint size: float64 %d bytes -> packed %.1f-bit %d bytes (%.1fx smaller)\n",
		full.Len(), res.AvgBits, packed.Len(), float64(full.Len())/float64(packed.Len()))

	// Reload as an edge device would and generate with the KV cache.
	device, err := core.ReadCompressed(&packed)
	if err != nil {
		log.Fatal(err)
	}
	session := infer.NewSession(device)
	rng := rand.New(rand.NewSource(7))
	prompt := src.Generate(rng, 6)
	generated, err := session.Generate(rng, prompt, 24, 0.8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprompt:    %s\n", vocab.Decode(prompt))
	fmt.Printf("generated: %s\n", vocab.Decode(generated))
}

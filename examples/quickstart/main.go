// Quickstart: pretrain a small LLaMA-style model on the synthetic corpus,
// quantize it with APTQ at an average of 3.5 bits (75% of weights at 4 bit,
// 25% at 2 bit), and compare perplexity before and after.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/train"
)

func main() {
	// 1. A synthetic "C4-like" corpus and a small decoder-only model.
	src := data.NewC4Like(64)
	cfg := model.Config{Name: "quickstart", Vocab: 64, Dim: 32, Heads: 4, Layers: 3, FF: 64, MaxSeq: 48, RopeBase: 10000}
	m := model.New(cfg, 1)
	fmt.Printf("model: %d parameters, %d quantizable weights\n", m.NumParams(), m.QuantizableWeightCount())

	// 2. Pretrain briefly so quantization error is measurable.
	fmt.Println("pretraining...")
	hist := train.Train(m, src, train.Config{
		Steps: 400, BatchSize: 4, SeqLen: 32, LR: 3e-3, Warmup: 20, ClipNorm: 1, Seed: 1,
	})
	fmt.Printf("final training loss: %.3f\n", hist.Final)

	// 3. Calibration data: random segments from the corpus, as in the paper.
	calib := data.SampleCalibration(rand.New(rand.NewSource(42)), src, 24, 32)

	// 4. Quantize with APTQ at R = 75% (avg 3.5 bits).
	opts := core.DefaultOptions(0.75)
	opts.GroupSize = 16
	res, err := core.Quantize(m, calib, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("quantized: avg %.2f bits (%.2f incl. group metadata), 4-bit ratio %.0f%%\n",
		res.AvgBits, res.AvgBitsWithOverhead, res.Allocation.Ratio()*100)

	// 5. Compare held-out perplexity.
	rng := rand.New(rand.NewSource(7))
	segs := make([][]int, 60)
	for i := range segs {
		segs[i] = src.Generate(rng, 48)
	}
	fp := eval.PerplexityOnSegments(m, segs)
	q := eval.PerplexityOnSegments(res.Model, segs)
	fmt.Printf("perplexity: fp=%.3f aptq-3.5bit=%.3f (+%.2f%%)\n", fp, q, (q/fp-1)*100)

	// 6. Which layers kept 4 bits?
	fmt.Println("\nper-layer allocation (most sensitive layers keep 4 bits):")
	for _, lr := range res.Layers {
		marker := ""
		if lr.Bits == 4 {
			marker = "  <- sensitive"
		}
		fmt.Printf("  %-30s %d bits%s\n", lr.Name, lr.Bits, marker)
	}
}

// Zero-shot: evaluate a quantized model on the five synthetic
// multiple-choice reasoning tasks (PIQA / Hellaswag / ARC-E / ARC-C /
// WinoGrande stand-ins), comparing full precision, APTQ and RTN — a small
// version of the paper's Table 2.
//
// Run with:
//
//	go run ./examples/zeroshot
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/train"
)

func main() {
	src := data.NewC4Like(64)
	cfg := model.Config{Name: "zeroshot", Vocab: 64, Dim: 32, Heads: 4, Layers: 3, FF: 64, MaxSeq: 48, RopeBase: 10000}
	m := model.New(cfg, 1)
	fmt.Println("pretraining...")
	train.Train(m, src, train.Config{Steps: 400, BatchSize: 4, SeqLen: 32, LR: 3e-3, Warmup: 20, ClipNorm: 1, Seed: 1})

	// Build the task suite once so every method sees identical items.
	rng := rand.New(rand.NewSource(777))
	var tasks []data.Task
	for _, spec := range data.StandardTasks() {
		tasks = append(tasks, data.GenerateTask(rng, src, spec, 60))
	}

	calib := data.SampleCalibration(rand.New(rand.NewSource(42)), src, 24, 32)
	opts := core.DefaultOptions(0.75)
	opts.GroupSize = 16
	aptq, err := core.Quantize(m, calib, opts)
	if err != nil {
		log.Fatal(err)
	}
	rtn2 := baselines.RTN(m, 2, 16)

	rows := []struct {
		name string
		m    *model.Model
	}{
		{"FP (float64)", m},
		{"APTQ-75% (3.5 bit)", aptq.Model},
		{"RTN 2-bit", rtn2.Model},
	}

	fmt.Printf("\n%-20s", "method")
	for _, task := range tasks {
		fmt.Printf(" %-10s", task.Name)
	}
	fmt.Printf(" %s\n", "mean")
	for _, row := range rows {
		r := eval.EvaluateSuite(row.m, tasks)
		fmt.Printf("%-20s", row.name)
		for _, a := range r.Accuracies {
			fmt.Printf(" %-10.1f", a*100)
		}
		fmt.Printf(" %.2f\n", r.Mean()*100)
	}
	fmt.Println("\n(scores are accuracies in %; options scored by length-normalized log-likelihood)")
}

// Token-loop-vs-chunked prefill benchmark pairs. Both consume the same
// 64-token prompt over the same model; only the prompt path differs. The
// loop variants feed the prompt through Step one token at a time (a full
// 1 x Dim matvec sweep and an O(seq) attention re-read per token — the
// pre-chunking Prefill), the chunked variants run the batched block
// forward (matrix-matrix projections, LUT-accelerated packed decode, bulk
// KV append, reusable scratch arena). Outputs are bit-identical; both
// report prompt tok/s.
//
//	go test -run='^$' -bench=Prefill -benchtime=1x .
package repro

import (
	"math/rand"
	"testing"

	"repro/internal/infer"
	"repro/internal/model"
	"repro/internal/quant"
)

// prefillBenchConfig is a serving-scale configuration: wide enough that
// matrix-matrix locality and decode amortization show, small enough for
// the bench-smoke CI job.
func prefillBenchConfig() model.Config {
	return model.Config{Name: "prefill-bench", Vocab: 256, Dim: 128, Heads: 8, Layers: 4, FF: 256, MaxSeq: 128, RopeBase: 10000}
}

const prefillBenchPrompt = 64

// packModel swaps every quantizable projection of m for its 4-bit packed
// form (RTN, group 16).
func packModel(b *testing.B, m *model.Model) *model.Model {
	b.Helper()
	var packed []*quant.PackedMatrix
	for _, ref := range m.QuantizableLayers() {
		pm, err := quant.PackMatrix(quant.RTN(ref.Linear.P.W, 4, 16, false))
		if err != nil {
			b.Fatal(err)
		}
		packed = append(packed, pm)
	}
	qm, err := model.NewQuantizedModel(m, packed)
	if err != nil {
		b.Fatal(err)
	}
	return qm.Model
}

func benchPrefill(b *testing.B, m *model.Model, chunk int) {
	skipUnderShort(b)
	rng := rand.New(rand.NewSource(4))
	prompt := make([]int, prefillBenchPrompt)
	for i := range prompt {
		prompt[i] = rng.Intn(m.Cfg.Vocab)
	}
	sess := infer.NewSession(m.View())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.Reset()
		var err error
		if chunk > 0 {
			_, err = sess.PrefillChunked(prompt, chunk)
		} else {
			_, err = sess.PrefillLoop(prompt)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*prefillBenchPrompt)/b.Elapsed().Seconds(), "tok/s")
}

func BenchmarkPrefillLoopFloat(b *testing.B) {
	benchPrefill(b, model.New(prefillBenchConfig(), 1), 0)
}

func BenchmarkPrefillChunkedFloat(b *testing.B) {
	benchPrefill(b, model.New(prefillBenchConfig(), 1), infer.DefaultPrefillChunk)
}

func BenchmarkPrefillLoopPacked(b *testing.B) {
	benchPrefill(b, packModel(b, model.New(prefillBenchConfig(), 1)), 0)
}

func BenchmarkPrefillChunkedPacked(b *testing.B) {
	benchPrefill(b, packModel(b, model.New(prefillBenchConfig(), 1)), infer.DefaultPrefillChunk)
}

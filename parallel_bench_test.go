// Serial-vs-parallel micro-benchmarks of the kernels and pipeline stages
// that the internal/parallel subsystem accelerates. Each pair pins the
// worker count explicitly — 1 for the serial baseline, 4 for the parallel
// variant — so the BENCH trajectory records the speedup on CI hardware
// independent of GOMAXPROCS:
//
//	go test -bench='MatMul(Serial|Parallel)|Quantize(Serial|Parallel)' -benchtime=1x
//
// The equality tests in internal/tensor, internal/gptq and internal/core
// prove the two variants of every pair return bit-identical results.
package repro

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// parallelBenchWorkers is the worker count for the parallel variants; the
// CI acceptance target is >= 2x over serial at 4 workers.
const parallelBenchWorkers = 4

func withBenchWorkers(b *testing.B, workers int, fn func()) {
	b.Helper()
	parallel.SetWorkers(workers)
	defer parallel.SetWorkers(0)
	b.ReportAllocs()
	b.ResetTimer()
	fn()
}

// --- dense kernels, CI-sized (256-dim) inputs ---

func benchMatMul(b *testing.B, workers int) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.Randn(rng, 256, 256, 1)
	y := tensor.Randn(rng, 256, 256, 1)
	out := tensor.New(256, 256)
	withBenchWorkers(b, workers, func() {
		for i := 0; i < b.N; i++ {
			tensor.MatMulInto(out, x, y)
		}
	})
}

func BenchmarkMatMulSerial(b *testing.B)   { benchMatMul(b, 1) }
func BenchmarkMatMulParallel(b *testing.B) { benchMatMul(b, parallelBenchWorkers) }

func benchMatMulTN(b *testing.B, workers int) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.Randn(rng, 256, 192, 1)
	y := tensor.Randn(rng, 256, 224, 1)
	out := tensor.New(192, 224)
	withBenchWorkers(b, workers, func() {
		for i := 0; i < b.N; i++ {
			tensor.MatMulTNInto(out, x, y)
		}
	})
}

func BenchmarkMatMulTNSerial(b *testing.B)   { benchMatMulTN(b, 1) }
func BenchmarkMatMulTNParallel(b *testing.B) { benchMatMulTN(b, parallelBenchWorkers) }

func benchAccumGram(b *testing.B, workers int) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.Randn(rng, 512, 256, 1)
	out := tensor.New(256, 256)
	withBenchWorkers(b, workers, func() {
		for i := 0; i < b.N; i++ {
			out.Zero()
			tensor.AccumGram(out, x)
		}
	})
}

func BenchmarkAccumGramSerial(b *testing.B)   { benchAccumGram(b, 1) }
func BenchmarkAccumGramParallel(b *testing.B) { benchAccumGram(b, parallelBenchWorkers) }

// --- per-layer quantization fan-out ---

// quantizeBenchSetup builds one shared (model, stats) pair: the nano-7B
// stand-in (42 quantizable layers) with untrained weights — layer fan-out
// cost is what is being measured, not pretraining.
var quantizeBenchSetup = sync.OnceValues(func() (*model.Model, *core.Stats) {
	m := model.New(model.Nano7B(), 1)
	src := data.NewC4Like(m.Cfg.Vocab)
	calib := data.SampleCalibration(rand.New(rand.NewSource(42)), src, 8, 32)
	st, err := core.CollectStats(m, calib, core.CollectOptions{Probes: 2, Seed: 1})
	if err != nil {
		panic(err)
	}
	return m, st
})

func benchQuantize(b *testing.B, workers int) {
	m, st := quantizeBenchSetup()
	opts := core.DefaultOptions(0.75)
	withBenchWorkers(b, workers, func() {
		for i := 0; i < b.N; i++ {
			if _, err := core.QuantizeWithStats(m, st, nil, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkQuantizeSerial(b *testing.B)   { benchQuantize(b, 1) }
func BenchmarkQuantizeParallel(b *testing.B) { benchQuantize(b, parallelBenchWorkers) }

#!/bin/sh
# CI memory-pressure smoke: boot aptq-serve on the built-in demo model
# with a deliberately tiny KV budget (-kv-budget-mb 1 = 128 pages of the
# demo model's 8 KiB pages) and far more slots than the budget can hold
# resident at once, then drive it through a seeded burst (aptq-loadgen
# -burst-rps) that overloads admission. The run must degrade gracefully,
# not fail:
#
#   - zero client-visible errors (the loadgen gates itself with
#     -max-error-rate 0 — every preempted request still finishes, with
#     bit-identical output per the scheduler's contract),
#   - at least one preemption (the ladder was actually exercised; a run
#     that never preempted proves nothing about degradation),
#   - the pool's high-water mark at or below the budget (the hard memory
#     guarantee), and
#   - zero panics.
#
# The latency percentiles plus the LoadgenPressure counters land in a
# benchjson-schema snapshot (default PRESSURE_CI.json, override with
# $PRESSURE_JSON) that CI uploads as an artifact. Used by
# `make pressure-smoke` and CI.
set -eu

ADDR="${APTQ_SERVE_ADDR:-127.0.0.1:8799}"
OUT="${PRESSURE_JSON:-PRESSURE_CI.json}"
RATE="${LOADGEN_RATE:-100}"
BURST="${LOADGEN_BURST_RPS:-2000}"
RAMP="${LOADGEN_RAMP_S:-0.5}"
DURATION="${LOADGEN_DURATION:-2s}"
BINDIR="$(mktemp -d)"
LOG="$(mktemp)"
PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    [ -n "$PID" ] && wait "$PID" 2>/dev/null || true
    rm -rf "$BINDIR" "$LOG"
}
trap cleanup EXIT

go build -o "$BINDIR/aptq-serve" ./cmd/aptq-serve
go build -o "$BINDIR/aptq-loadgen" ./cmd/aptq-loadgen

# 24 slots of up-to-12-page sequences against a 128-page budget: admission
# over-commits across ticks (headroom is an estimate, not a reservation),
# so a sustained burst must trigger preemption. The demo model decodes in
# microseconds, so the burst has to be steep (2000 rps) to build enough
# concurrency to fill the pool. The prefix cache shares the same pool as
# the sacrificial tier.
"$BINDIR/aptq-serve" -addr "$ADDR" -slots 24 -kv-budget-mb 1 \
    -max-queue 4096 -prefix-cache 262144 >"$LOG" 2>&1 &
PID=$!

ok=0
for _ in $(seq 1 50); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then
        ok=1
        break
    fi
    sleep 0.2
done
if [ "$ok" != 1 ]; then
    echo "pressure-smoke: server did not come up; log:" >&2
    cat "$LOG" >&2
    exit 1
fi

# Long prompts and outputs (up to 63 of the demo model's 64-token context)
# maximize per-slot page demand; -max-error-rate 0 is the graceful-
# degradation gate — overload may slow requests down, never fail them. No
# TTFT gate: queueing delay under deliberate overload is unbounded by
# design.
"$BINDIR/aptq-loadgen" \
    -url "http://$ADDR" \
    -rate "$RATE" -burst-rps "$BURST" -ramp-s "$RAMP" -duration "$DURATION" -seed 1 \
    -prompt-min 16 -prompt-max 40 -out-min 16 -out-max 24 \
    -prefix-pop 2 -prefix-len 16 -prefix-frac 0.5 \
    -max-error-rate 0 \
    -out "$OUT"

# Assert the pressure ladder actually engaged, from the snapshot's
# LoadgenPressure section (the only section carrying these keys).
val() {
    sed -n "s/^ *\"$1\": \([0-9.e+-]*\),*\$/\1/p" "$OUT" | head -1
}
PREEMPTIONS="$(val preemptions)"
PANICS="$(val panics)"
BUDGET="$(val kv_budget_bytes)"
HIGHWATER="$(val kv_high_water_bytes)"
if [ -z "$PREEMPTIONS" ] || [ -z "$PANICS" ] || [ -z "$BUDGET" ] || [ -z "$HIGHWATER" ]; then
    echo "pressure-smoke: snapshot missing pressure counters:" >&2
    cat "$OUT" >&2
    exit 1
fi
awk "BEGIN { exit !($PREEMPTIONS >= 1) }" || {
    echo "pressure-smoke: preemptions = $PREEMPTIONS, want >= 1 (overload never engaged the ladder)" >&2
    exit 1
}
awk "BEGIN { exit !($PANICS == 0) }" || {
    echo "pressure-smoke: panics = $PANICS, want 0" >&2
    exit 1
}
awk "BEGIN { exit !($BUDGET > 0 && $HIGHWATER <= $BUDGET) }" || {
    echo "pressure-smoke: kv_high_water_bytes $HIGHWATER exceeds kv_budget_bytes $BUDGET" >&2
    exit 1
}

echo "pressure-smoke: OK (preemptions=$PREEMPTIONS high_water=$HIGHWATER budget=$BUDGET)"
cat "$OUT"

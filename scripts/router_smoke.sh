#!/bin/sh
# End-to-end fault-tolerance smoke for aptq-router: boot three aptq-serve
# replicas on kernel-assigned ports, front them with the router (with
# seeded chaos fault injection on the upstream path: refused connections
# and responses cut mid-body), and drive mixed streaming traffic through
# it with aptq-loadgen under a zero-error gate. Mid-run, one replica is
# SIGKILLed. The run must finish with zero client-visible errors, the
# router must converge to 2 healthy replicas with the dead one ejected,
# and a pinned generate request must return byte-identical replies
# before the kill, after the kill, and from a surviving replica directly
# — the determinism contract is what makes failover invisible. Latency
# and router counters land in a benchjson-schema snapshot (default
# ROUTER_CI.json, override with $ROUTER_JSON) that CI uploads as an
# artifact. Used by `make router-smoke` and CI.
set -eu

OUT="${ROUTER_JSON:-ROUTER_CI.json}"
RATE="${LOADGEN_RATE:-40}"
DURATION="${LOADGEN_DURATION:-4s}"
BINDIR="$(mktemp -d)"
LOGDIR="$(mktemp -d)"
PIDS=""
cleanup() {
    for p in $PIDS; do
        kill "$p" 2>/dev/null || true
    done
    for p in $PIDS; do
        wait "$p" 2>/dev/null || true
    done
    rm -rf "$BINDIR" "$LOGDIR"
}
trap cleanup EXIT

go build -o "$BINDIR/aptq-serve" ./cmd/aptq-serve
go build -o "$BINDIR/aptq-router" ./cmd/aptq-router
go build -o "$BINDIR/aptq-loadgen" ./cmd/aptq-loadgen

# wait_addr LOGFILE: block until the process has printed its ADDR= line
# (the machine-parseable first-stdout-line contract of both binaries) and
# echo the bound host:port.
wait_addr() {
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^ADDR=//p' "$1" | head -n 1)
        if [ -n "$addr" ]; then
            echo "$addr"
            return 0
        fi
        sleep 0.1
    done
    echo "router-smoke: no ADDR= line in $1; log:" >&2
    cat "$1" >&2
    return 1
}

# Three identical replicas on kernel-assigned ports; the prefix cache is
# on so routing affinity has something to pay off into.
i=1
while [ "$i" -le 3 ]; do
    "$BINDIR/aptq-serve" -addr 127.0.0.1:0 -slots 2 -max-queue 4096 \
        -prefix-cache 67108864 >"$LOGDIR/serve$i.log" 2>&1 &
    PIDS="$PIDS $!"
    eval "SERVE${i}_PID=$!"
    i=$((i + 1))
done
R1=$(wait_addr "$LOGDIR/serve1.log")
R2=$(wait_addr "$LOGDIR/serve2.log")
R3=$(wait_addr "$LOGDIR/serve3.log")

# The router, with modest seeded chaos on the upstream path: ~3% refused
# connections, ~3% responses cut after 200 bytes. The failover machinery
# must absorb all of it — the loadgen gate below is zero errors.
"$BINDIR/aptq-router" -addr 127.0.0.1:0 \
    -replicas "http://$R1,http://$R2,http://$R3" \
    -probe-interval 100ms -probe-timeout 1s \
    -eject-after 2 -backoff-min 100ms -backoff-max 1s \
    -seed 1 \
    -chaos-seed 7 -chaos-refuse 0.03 -chaos-hangup 0.03 -chaos-hangup-after 200 \
    >"$LOGDIR/router.log" 2>&1 &
ROUTER_PID=$!
PIDS="$PIDS $ROUTER_PID"
ROUTER=$(wait_addr "$LOGDIR/router.log")

ok=0
for _ in $(seq 1 50); do
    if curl -sf "http://$ROUTER/healthz" >/dev/null 2>&1; then
        ok=1
        break
    fi
    sleep 0.1
done
if [ "$ok" != 1 ]; then
    echo "router-smoke: router did not come up; log:" >&2
    cat "$LOGDIR/router.log" >&2
    exit 1
fi

# Pin one request's bytes before any fault: via the router, and directly
# against replica 1 (which survives the kill). Identical replicas mean
# identical bytes — the property every retry and failover below leans on.
BODY='{"tokens":[1,2,3],"max_tokens":8,"temperature":0.8,"seed":7}'
A=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$BODY" "http://$ROUTER/v1/generate")
DIRECT=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$BODY" "http://$R1/v1/generate")
if [ "$A" != "$DIRECT" ]; then
    echo "router-smoke: routed reply differs from a direct replica reply:" >&2
    echo "  $A" >&2
    echo "  $DIRECT" >&2
    exit 1
fi

# Mixed streaming traffic through the router, gated at zero errors; the
# p99 TTFT bound is deliberately loose (it catches hangs, not drift).
"$BINDIR/aptq-loadgen" \
    -url "http://$ROUTER" \
    -rate "$RATE" -duration "$DURATION" -seed 1 \
    -prefix-pop 2 -shared-prefix 32 -prefix-frac 0.9 \
    -priorities 3 \
    -max-error-rate 0 -max-p99-ttft-ms 5000 \
    -out "$OUT" >"$LOGDIR/loadgen.log" 2>&1 &
LOADGEN_PID=$!

# Kill replica 3 outright mid-run — no drain, no goodbye. The router has
# to notice via failed requests/probes, eject it, and re-route its keys
# to ring successors without a single client-visible error.
sleep 1.5
kill -9 "$SERVE3_PID" 2>/dev/null || true

if ! wait "$LOADGEN_PID"; then
    echo "router-smoke: loadgen gates tripped after replica kill; log:" >&2
    cat "$LOGDIR/loadgen.log" >&2
    echo "router log:" >&2
    cat "$LOGDIR/router.log" >&2
    exit 1
fi

# The pinned request must still produce the pre-kill bytes: failover is
# byte-invisible, not merely "still up".
B=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$BODY" "http://$ROUTER/v1/generate")
if [ "$A" != "$B" ]; then
    echo "router-smoke: reply changed after replica kill:" >&2
    echo "  before: $A" >&2
    echo "  after:  $B" >&2
    exit 1
fi

# The fleet must converge: 2 healthy replicas, the dead one ejected.
converged=0
for _ in $(seq 1 50); do
    HEALTH=$(curl -s "http://$ROUTER/healthz" || true)
    case "$HEALTH" in
    *'"healthy":2'*)
        converged=1
        break
        ;;
    esac
    sleep 0.1
done
if [ "$converged" != 1 ]; then
    echo "router-smoke: router never converged to 2 healthy replicas: $HEALTH" >&2
    exit 1
fi

STATS=$(curl -sf "http://$ROUTER/v1/stats")
case "$STATS" in
*'"router_requests":'*) ;;
*)
    echo "router-smoke: stats missing router counters: $STATS" >&2
    exit 1
    ;;
esac
case "$STATS" in
*'"router_errors":0'*) ;;
*)
    echo "router-smoke: router reported client-visible errors: $STATS" >&2
    exit 1
    ;;
esac
EJECTIONS=$(printf '%s' "$STATS" | sed -n 's/.*"router_ejections":\([0-9]*\).*/\1/p')
if [ -z "$EJECTIONS" ] || [ "$EJECTIONS" -lt 1 ]; then
    echo "router-smoke: killed replica was never ejected: $STATS" >&2
    exit 1
fi

echo "router-smoke: OK (replica kill absorbed; ejections=$EJECTIONS; $A)"
cat "$OUT"

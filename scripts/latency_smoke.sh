#!/bin/sh
# CI latency smoke: build aptq-serve and aptq-loadgen, boot the server on
# the built-in demo model with the prefix cache enabled, and drive it
# open-loop for a few seconds of mixed streaming traffic (skewed
# prompt/output lengths, page-sized shared prefixes, priority classes).
# The loadgen gates itself: any failed request, or a p99 TTFT past the
# (deliberately absurd) bound, exits non-zero and fails the job. The
# latency percentiles — plus the paged-KV sharing counters sampled from
# /v1/stats after the run (-shared-prefix is a multiple of the 16-row KV
# page, so prefix pages are adopted zero-copy and kv_sharing_ratio > 1) —
# land in a benchjson-schema snapshot (default LATENCY_CI.json, override
# with $LATENCY_JSON) that CI uploads as an artifact, so the serving
# latency and residency trajectory is diffable with `benchjson -compare
# old.json new.json -ms-threshold ...` exactly like the throughput
# snapshots. Used by `make latency-smoke` and CI.
set -eu

ADDR="${APTQ_SERVE_ADDR:-127.0.0.1:8798}"
OUT="${LATENCY_JSON:-LATENCY_CI.json}"
RATE="${LOADGEN_RATE:-40}"
DURATION="${LOADGEN_DURATION:-3s}"
BINDIR="$(mktemp -d)"
LOG="$(mktemp)"
PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    [ -n "$PID" ] && wait "$PID" 2>/dev/null || true
    rm -rf "$BINDIR" "$LOG"
}
trap cleanup EXIT

go build -o "$BINDIR/aptq-serve" ./cmd/aptq-serve
go build -o "$BINDIR/aptq-loadgen" ./cmd/aptq-loadgen

"$BINDIR/aptq-serve" -addr "$ADDR" -slots 4 -max-queue 4096 -prefix-cache 67108864 >"$LOG" 2>&1 &
PID=$!

ok=0
for _ in $(seq 1 50); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then
        ok=1
        break
    fi
    sleep 0.2
done
if [ "$ok" != 1 ]; then
    echo "latency-smoke: server did not come up; log:" >&2
    cat "$LOG" >&2
    exit 1
fi

# Gates: zero tolerance for errors, and a p99 TTFT bound loose enough for
# any CI machine — it exists to catch hangs and step-function regressions,
# not percent-level drift.
"$BINDIR/aptq-loadgen" \
    -url "http://$ADDR" \
    -rate "$RATE" -duration "$DURATION" -seed 1 \
    -prefix-pop 2 -shared-prefix 32 -prefix-frac 0.9 \
    -priorities 3 \
    -max-error-rate 0 -max-p99-ttft-ms 5000 \
    -out "$OUT"

echo "latency-smoke: OK"
cat "$OUT"

#!/bin/sh
# End-to-end smoke test for aptq-serve: build the server, start it on the
# built-in demo model, wait for /healthz, issue the same generate request
# twice, and assert the replies are byte-identical (the serving determinism
# contract) and well-formed. Then issue the same request as an SSE stream
# and assert the assembled stream — per-token events plus the final event —
# is byte-identical to the non-streaming reply: streaming is a transport
# change, never a semantic one. Used by `make serve-smoke` and CI.
set -eu

ADDR="${APTQ_SERVE_ADDR:-127.0.0.1:8797}"
BINDIR="$(mktemp -d)"
BIN="$BINDIR/aptq-serve"
LOG="$(mktemp)"
PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    [ -n "$PID" ] && wait "$PID" 2>/dev/null || true
    rm -rf "$BINDIR" "$LOG"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/aptq-serve

"$BIN" -addr "$ADDR" -slots 2 >"$LOG" 2>&1 &
PID=$!

ok=0
for _ in $(seq 1 50); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then
        ok=1
        break
    fi
    sleep 0.2
done
if [ "$ok" != 1 ]; then
    echo "serve-smoke: server did not come up; log:" >&2
    cat "$LOG" >&2
    exit 1
fi

BODY='{"tokens":[1,2,3],"max_tokens":8,"temperature":0.8,"seed":7}'
A=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$BODY" "http://$ADDR/v1/generate")
B=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$BODY" "http://$ADDR/v1/generate")

if [ "$A" != "$B" ]; then
    echo "serve-smoke: non-deterministic replies:" >&2
    echo "  $A" >&2
    echo "  $B" >&2
    exit 1
fi
case "$A" in
*'"finish_reason":"length"'*) ;;
*)
    echo "serve-smoke: unexpected reply: $A" >&2
    exit 1
    ;;
esac

# Streaming form of the same request: collect every `data:` payload.
EVENTS=$(curl -sfN -X POST -H 'Content-Type: application/json' -d "$BODY" \
    "http://$ADDR/v1/generate?stream=1" | sed -n 's/^data: //p')
if [ -z "$EVENTS" ]; then
    echo "serve-smoke: empty SSE stream" >&2
    exit 1
fi

# The final event carries the complete response body, byte-identical to
# the non-streaming reply.
FINAL=$(printf '%s\n' "$EVENTS" | tail -n 1)
if [ "$FINAL" != "$A" ]; then
    echo "serve-smoke: final stream event differs from the plain reply:" >&2
    echo "  $FINAL" >&2
    echo "  $A" >&2
    exit 1
fi

# The per-token events (all but the last) assemble to exactly the reply's
# tokens array.
NEVENTS=$(printf '%s\n' "$EVENTS" | wc -l)
STREAMED=$(printf '%s\n' "$EVENTS" | head -n "$((NEVENTS - 1))" \
    | sed -n 's/.*"token":\([0-9]*\).*/\1/p' | tr '\n' ',')
STREAMED="${STREAMED%,}"
REPLY_TOKENS=$(printf '%s\n' "$A" | sed 's/.*"tokens":\[\([0-9,]*\)\].*/\1/')
if [ "$STREAMED" != "$REPLY_TOKENS" ]; then
    echo "serve-smoke: streamed tokens [$STREAMED] != reply tokens [$REPLY_TOKENS]" >&2
    exit 1
fi

STATS=$(curl -sf "http://$ADDR/v1/stats")
case "$STATS" in
*'"completed":3'*) ;;
*)
    echo "serve-smoke: unexpected stats: $STATS" >&2
    exit 1
    ;;
esac
case "$STATS" in
*'"itl_count":'*) ;;
*)
    echo "serve-smoke: stats missing inter-token latency surface: $STATS" >&2
    exit 1
    ;;
esac

echo "serve-smoke: OK ($A; streamed $STREAMED)"

GO ?= go
# Pinned staticcheck version (matches the CI job); override to test newer
# releases.
STATICCHECK_VERSION ?= 2025.1.1

.PHONY: all build test race bench bench-smoke serve-smoke fmt fmt-check vet staticcheck ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass; -short skips the minute-scale harness table tests so
# the job fits CI time limits (they still run in `make test`).
race:
	$(GO) test -race -short ./...

# Full benchmark run (macro experiment benchmarks included).
bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./...

# One-iteration smoke pass over the micro benchmarks (including the
# float-vs-packed pairs of packed_bench_test.go and the lockstep-vs-
# continuous scheduling pair of serve_bench_test.go), mirroring the CI job
# that keeps them compiling and running.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -short ./...
	$(GO) test -run='^$$' -bench='MatVec|DecodeBatch|RoPEAt|DecodeLockstep|DecodeContinuous' -benchtime=1x .

# End-to-end smoke of the HTTP serving front-end: build aptq-serve, start
# it, issue the same generate request twice, assert byte-identical replies.
serve-smoke:
	./scripts/serve_smoke.sh

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Runs the pinned staticcheck via `go run` (uses the local binary cache;
# needs network on first use). CI runs the same version in its own job.
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

# Mirrors .github/workflows/ci.yml (staticcheck needs network on first
# use to fetch the pinned binary; later runs hit the local cache).
ci: fmt-check vet staticcheck build test race bench-smoke serve-smoke

GO ?= go
# Pinned staticcheck version (matches the CI job); override to test newer
# releases.
STATICCHECK_VERSION ?= 2025.1.1

.PHONY: all build test race bench bench-smoke bench-json bench-compare serve-smoke latency-smoke router-smoke pressure-smoke fmt fmt-check vet aptq-vet staticcheck ci

# Output of `make bench-json` (benchmarks as data; CI uploads it) and the
# committed baseline `make bench-compare` diffs it against.
BENCH_JSON ?= BENCH_PR8.json
BENCH_BASELINE ?= BENCH_PR8.json

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass; -short skips the minute-scale harness table tests so
# the job fits CI time limits (they still run in `make test`).
race:
	$(GO) test -race -short ./...

# Full benchmark run (macro experiment benchmarks included).
bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./...

# One-iteration smoke pass over the micro benchmarks (including the
# float-vs-packed pairs of packed_bench_test.go, the lockstep-vs-
# continuous scheduling pair of serve_bench_test.go and the loop-vs-
# chunked prefill pairs of prefill_bench_test.go), mirroring the CI job
# that keeps them compiling and running.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -short ./...
	$(GO) test -run='^$$' -bench='MatVec|DecodeBatch|RoPEAt|DecodeLockstep|DecodeContinuous|Prefill|PrefixCache|PrefixShare' -benchtime=1x .

# Benchmarks as data: run the tier-1 benchmark set (the same two passes as
# bench-smoke, with -benchmem) and emit $(BENCH_JSON) — a JSON map of
# benchmark name to ns/op, allocs/op, tok/s and the custom metrics — via
# cmd/benchjson. CI uploads the file as an artifact so the performance
# trajectory is diffable across PRs.
# Each pass writes to a scratch file and must succeed before conversion,
# so a failing benchmark fails the target instead of silently producing a
# truncated artifact. The macro serving pairs run 3 iterations (still
# fast; each is milliseconds) so the snapshotted tok/s numbers are less
# single-shot noisy than -benchtime=1x.
bench-json:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -short -benchmem ./... > $(BENCH_JSON).txt
	$(GO) test -run='^$$' -bench='MatVec|DecodeBatch|RoPEAt|DecodeLockstep|DecodeContinuous|Prefill|PrefixCache|PrefixShare' -benchtime=3x -benchmem . >> $(BENCH_JSON).txt
	$(GO) run ./cmd/benchjson < $(BENCH_JSON).txt > $(BENCH_JSON)
	@rm -f $(BENCH_JSON).txt
	@echo "wrote $(BENCH_JSON)"

# Regression guardrail: take a fresh snapshot to $(BENCH_CI) — a scratch
# path, so the committed $(BENCH_JSON) artifact is never overwritten with
# machine-local numbers — diff it against the committed $(BENCH_BASELINE)
# and fail on tok/s drops or allocs/op growth past the (deliberately
# loose — single-iteration CI numbers are noisy) threshold, or on any
# lower-is-better *_bytes residency metric growing past -bytes-threshold
# (the PrefixShareResidentBytes pair reports kv-unique-bytes, so losing
# the paged cache's prefix sharing fails this target). Catches
# step-function regressions like a hot path regrowing its per-token
# allocations or every slot holding private prefix pages again.
BENCH_CI ?= BENCH_CI.json
bench-compare:
	$(MAKE) bench-json BENCH_JSON=$(BENCH_CI)
	$(GO) run ./cmd/benchjson -compare $(BENCH_BASELINE) $(BENCH_CI)

# End-to-end smoke of the HTTP serving front-end: build aptq-serve, start
# it, issue the same generate request twice, assert byte-identical replies
# — then once more as an SSE stream, asserting the assembled stream is
# byte-identical to the plain reply.
serve-smoke:
	./scripts/serve_smoke.sh

# CI latency gate: boot aptq-serve and drive it open-loop with
# aptq-loadgen for a few seconds of mixed streaming traffic. Fails on any
# request error or an absurd p99 TTFT; writes the p50/p99 TTFT and
# inter-token percentiles to LATENCY_CI.json (benchjson schema, uploaded
# as a CI artifact and diffable with `benchjson -compare -ms-threshold`).
latency-smoke:
	./scripts/latency_smoke.sh

# Fault-tolerance gate: three aptq-serve replicas behind aptq-router with
# seeded chaos injection on the upstream path; one replica is SIGKILLed
# mid-load. Zero client-visible errors, byte-identical replies across the
# kill, and the dead replica ejected — or the target fails. Router
# counters and latency percentiles land in ROUTER_CI.json.
router-smoke:
	./scripts/router_smoke.sh

# Memory-pressure gate: aptq-serve under a deliberately tiny KV budget
# (-kv-budget-mb 1) is overloaded with a seeded burst. Graceful
# degradation or bust: zero client-visible errors, at least one
# preemption, pool high-water within budget, zero panics. Counters land
# in PRESSURE_CI.json.
pressure-smoke:
	./scripts/pressure_smoke.sh

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# The repo's own analyzers (detlint, noalloc, foreachcapture — see
# internal/analysis) run through the standard `go vet -vettool=` protocol,
# so suppression, caching and exit codes behave exactly like vet.
aptq-vet:
	$(GO) build -o bin/aptq-vet ./cmd/aptq-vet
	$(GO) vet -vettool=$(CURDIR)/bin/aptq-vet ./...

# Runs the pinned staticcheck via `go run` (uses the local binary cache;
# needs network on first use). CI runs the same version in its own job.
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

# Mirrors .github/workflows/ci.yml (staticcheck needs network on first
# use to fetch the pinned binary; later runs hit the local cache).
ci: fmt-check vet aptq-vet staticcheck build test race bench-smoke bench-compare serve-smoke latency-smoke router-smoke pressure-smoke

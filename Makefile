GO ?= go

.PHONY: all build test race bench bench-smoke fmt fmt-check vet ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass; -short skips the minute-scale harness table tests so
# the job fits CI time limits (they still run in `make test`).
race:
	$(GO) test -race -short ./...

# Full benchmark run (macro experiment benchmarks included).
bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./...

# One-iteration smoke pass over the micro benchmarks, mirroring the CI job
# that keeps them compiling and running.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -short ./...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: fmt-check vet build test race bench-smoke

GO ?= go
# Pinned staticcheck version (matches the CI job); override to test newer
# releases.
STATICCHECK_VERSION ?= 2025.1.1

.PHONY: all build test race bench bench-smoke bench-json serve-smoke fmt fmt-check vet staticcheck ci

# Output of `make bench-json` (benchmarks as data; CI uploads it).
BENCH_JSON ?= BENCH_PR4.json

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass; -short skips the minute-scale harness table tests so
# the job fits CI time limits (they still run in `make test`).
race:
	$(GO) test -race -short ./...

# Full benchmark run (macro experiment benchmarks included).
bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./...

# One-iteration smoke pass over the micro benchmarks (including the
# float-vs-packed pairs of packed_bench_test.go, the lockstep-vs-
# continuous scheduling pair of serve_bench_test.go and the loop-vs-
# chunked prefill pairs of prefill_bench_test.go), mirroring the CI job
# that keeps them compiling and running.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -short ./...
	$(GO) test -run='^$$' -bench='MatVec|DecodeBatch|RoPEAt|DecodeLockstep|DecodeContinuous|Prefill' -benchtime=1x .

# Benchmarks as data: run the tier-1 benchmark set (the same two passes as
# bench-smoke, with -benchmem) and emit $(BENCH_JSON) — a JSON map of
# benchmark name to ns/op, allocs/op, tok/s and the custom metrics — via
# cmd/benchjson. CI uploads the file as an artifact so the performance
# trajectory is diffable across PRs.
# Each pass writes to a scratch file and must succeed before conversion,
# so a failing benchmark fails the target instead of silently producing a
# truncated artifact.
bench-json:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -short -benchmem ./... > $(BENCH_JSON).txt
	$(GO) test -run='^$$' -bench='MatVec|DecodeBatch|RoPEAt|DecodeLockstep|DecodeContinuous|Prefill' -benchtime=1x -benchmem . >> $(BENCH_JSON).txt
	$(GO) run ./cmd/benchjson < $(BENCH_JSON).txt > $(BENCH_JSON)
	@rm -f $(BENCH_JSON).txt
	@echo "wrote $(BENCH_JSON)"

# End-to-end smoke of the HTTP serving front-end: build aptq-serve, start
# it, issue the same generate request twice, assert byte-identical replies.
serve-smoke:
	./scripts/serve_smoke.sh

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Runs the pinned staticcheck via `go run` (uses the local binary cache;
# needs network on first use). CI runs the same version in its own job.
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

# Mirrors .github/workflows/ci.yml (staticcheck needs network on first
# use to fetch the pinned binary; later runs hit the local cache).
ci: fmt-check vet staticcheck build test race bench-smoke serve-smoke

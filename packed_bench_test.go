// Float-vs-packed benchmark pairs for the quantized execution subsystem.
// Each MatVec pair compares one decode-step projection (1 x in row times
// an out x in weight matrix) between the float64 path and dequant-on-the-
// fly packed execution (LUT-accelerated), reporting resident weight bytes
// alongside ns/op; the DecodeBatch pairs run steady-state multi-sequence
// KV-cached generation on recycled sessions — zero allocations per token
// on the float path (the decode-arena property, test-enforced in
// internal/infer). The RoPEAt pair records the incremental-decode
// rotation fix (direct rotate-at-position vs the previous padded-matrix
// embedding).
//
//	go test -run='^$' -bench='MatVec|DecodeBatch|RoPEAt' -benchtime=1x .
package repro

import (
	"math/rand"
	"testing"

	"repro/internal/infer"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// skipUnderShort keeps these pairs out of the generic `-bench=. -short`
// smoke pass: CI and make bench-smoke run them once, explicitly, via
// -bench='MatVec|DecodeBatch|RoPEAt' without -short, so the BENCH log gets
// a single entry per pair instead of duplicates.
func skipUnderShort(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("float-vs-packed pair runs in the dedicated packed bench step")
	}
}

// matVecDims matches a serving-scale projection at nano proportions scaled
// up: 256 outputs x 256 inputs.
const matVecOut, matVecIn = 256, 256

func benchMatVecFloat(b *testing.B) {
	skipUnderShort(b)
	rng := rand.New(rand.NewSource(1))
	w := tensor.Randn(rng, matVecOut, matVecIn, 1)
	l := &nn.Linear{P: nn.NewParam("w", w)}
	x := tensor.Randn(rng, 1, matVecIn, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Forward(x)
	}
	b.ReportMetric(float64(8*matVecOut*matVecIn), "weight-bytes")
}

func benchMatVecPacked(b *testing.B, bits int) {
	skipUnderShort(b)
	rng := rand.New(rand.NewSource(1))
	w := tensor.Randn(rng, matVecOut, matVecIn, 1)
	pm, err := quant.PackMatrix(quant.RTN(w, bits, 16, false))
	if err != nil {
		b.Fatal(err)
	}
	l := nn.NewQuantizedLinear("w", pm, nil)
	x := tensor.Randn(rng, 1, matVecIn, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Forward(x)
	}
	b.ReportMetric(float64(pm.SizeBytes()), "weight-bytes")
}

func BenchmarkMatVecFloat64(b *testing.B)    { benchMatVecFloat(b) }
func BenchmarkMatVecPacked4Bit(b *testing.B) { benchMatVecPacked(b, 4) }
func BenchmarkMatVecPacked2Bit(b *testing.B) { benchMatVecPacked(b, 2) }

// benchDecodeBatch measures steady-state decode: n recycled sessions
// (warm KV chunks, decode/prefill arenas, sampler buffers and packed LUT
// tables — the regime of a serving slot pool) each prefill a short prompt
// and sample-and-feed steps tokens. The measured loop performs zero heap
// allocations on the float path at one worker (reported via -benchmem /
// allocs/op); before the decode arena it paid ~3k allocations (~1 MB) per
// token. Reports tokens/s of generated tokens.
func benchDecodeBatch(b *testing.B, m *model.Model, n int, weightBytes int64) {
	rng := rand.New(rand.NewSource(2))
	prompts := make([][]int, n)
	for i := range prompts {
		prompts[i] = []int{rng.Intn(m.Cfg.Vocab), rng.Intn(m.Cfg.Vocab)}
	}
	const steps = 16
	batch := infer.NewBatch(m, n)
	samplers := make([]*infer.Sampler, n)
	rngs := make([]*rand.Rand, n)
	for i := range samplers {
		samplers[i] = &infer.Sampler{}
		rngs[i] = rand.New(rand.NewSource(0))
	}
	run := func() {
		batch.Reset()
		for i := 0; i < n; i++ {
			rngs[i].Seed(int64(7 + i)) // per-sequence stream, re-seeded per run
			sess := batch.Session(i)
			logits, err := sess.Append(prompts[i])
			if err != nil {
				b.Fatal(err)
			}
			for t := 0; t < steps; t++ {
				tok := samplers[i].Sample(rngs[i], logits.Row(0), 0.8)
				if t == steps-1 {
					break // last sampled token is not fed back (Generate's shape)
				}
				if logits, err = sess.Step(tok); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	run() // warm arenas, KV chunks and LUT tables out of the measurement
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.StopTimer()
	b.ReportMetric(float64(weightBytes), "weight-bytes")
	tokens := float64(b.N * n * steps)
	b.ReportMetric(tokens/b.Elapsed().Seconds(), "tok/s")
}

func floatBenchModel() (*model.Model, int64) {
	m := model.New(model.Nano7B(), 1)
	var bytes int64
	for _, ref := range m.QuantizableLayers() {
		bytes += 8 * int64(ref.NumWeights())
	}
	return m, bytes
}

func packedBenchModel(b *testing.B) (*model.Model, int64) {
	m, _ := floatBenchModel()
	var packed []*quant.PackedMatrix
	for _, ref := range m.QuantizableLayers() {
		pm, err := quant.PackMatrix(quant.RTN(ref.Linear.P.W, 4, 16, false))
		if err != nil {
			b.Fatal(err)
		}
		packed = append(packed, pm)
	}
	qm, err := model.NewQuantizedModel(m, packed)
	if err != nil {
		b.Fatal(err)
	}
	return qm.Model, qm.PackedWeightBytes()
}

func BenchmarkDecodeBatch1Float(b *testing.B) {
	skipUnderShort(b)
	m, bytes := floatBenchModel()
	benchDecodeBatch(b, m, 1, bytes)
}

func BenchmarkDecodeBatch4Float(b *testing.B) {
	skipUnderShort(b)
	m, bytes := floatBenchModel()
	benchDecodeBatch(b, m, 4, bytes)
}

func BenchmarkDecodeBatch4Packed(b *testing.B) {
	skipUnderShort(b)
	m, bytes := packedBenchModel(b)
	benchDecodeBatch(b, m, 4, bytes)
}

func BenchmarkDecodeBatch8Packed(b *testing.B) {
	skipUnderShort(b)
	m, bytes := packedBenchModel(b)
	benchDecodeBatch(b, m, 8, bytes)
}

// --- RoPE rotate-at-position: before/after the O(seq²) decode fix ---

func benchRoPEAt(b *testing.B, padded bool) {
	skipUnderShort(b)
	const headDim, dim, pos = 16, 64, 63
	r := nn.NewRoPE(headDim, pos+1, 10000)
	rng := rand.New(rand.NewSource(3))
	row := tensor.Randn(rng, 1, dim, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if padded {
			// The previous incremental-decode formulation: embed the row at
			// index pos of a (pos+1 x dim) zero matrix and rotate all of it.
			p := tensor.New(pos+1, dim)
			copy(p.Row(pos), row.Row(0))
			r.Apply(p)
			copy(row.Row(0), p.Row(pos))
		} else {
			r.ApplyAt(row, pos)
		}
	}
}

func BenchmarkRoPEAtPadded(b *testing.B) { benchRoPEAt(b, true) }
func BenchmarkRoPEAtDirect(b *testing.B) { benchRoPEAt(b, false) }
